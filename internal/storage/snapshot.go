package storage

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Snapshot writing: named sections appended to a PageFile, finalised with
// a directory section and the header.

// dirEntry describes one stored section.
type dirEntry struct {
	name      string
	firstPage int64
	length    int64
	crc       uint32
}

// Writer assembles a snapshot file section by section.
type Writer struct {
	pf      *PageFile
	entries []dirEntry
	cur     *sectionWriter
	curName string
	closed  bool
}

// NewWriter creates a snapshot file at path.
func NewWriter(path string) (*Writer, error) {
	pf, err := CreatePageFile(path)
	if err != nil {
		return nil, err
	}
	return &Writer{pf: pf}, nil
}

// Section starts a new named section and returns its writer. The previous
// section, if any, is finished first. Section names must be unique.
func (w *Writer) Section(name string) (io.Writer, error) {
	if w.closed {
		return nil, fmt.Errorf("storage: writer closed")
	}
	if err := w.finishCurrent(); err != nil {
		return nil, err
	}
	for _, e := range w.entries {
		if e.name == name {
			return nil, fmt.Errorf("storage: duplicate section %q", name)
		}
	}
	w.cur = &sectionWriter{pf: w.pf}
	w.curName = name
	return w.cur, nil
}

func (w *Writer) finishCurrent() error {
	if w.cur == nil {
		return nil
	}
	if err := w.cur.finish(); err != nil {
		return err
	}
	w.entries = append(w.entries, dirEntry{
		name:      w.curName,
		firstPage: w.cur.firstPage,
		length:    w.cur.length,
		crc:       w.cur.crc,
	})
	w.cur = nil
	return nil
}

// Close finishes the last section, writes the directory and header, and
// closes the file.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.finishCurrent(); err != nil {
		w.pf.Close()
		return err
	}
	// Serialise the directory.
	var dir []byte
	var tmp [binary.MaxVarintLen64]byte
	putUv := func(v uint64) { n := binary.PutUvarint(tmp[:], v); dir = append(dir, tmp[:n]...) }
	putUv(uint64(len(w.entries)))
	for _, e := range w.entries {
		putUv(uint64(len(e.name)))
		dir = append(dir, e.name...)
		putUv(uint64(e.firstPage))
		putUv(uint64(e.length))
		putUv(uint64(e.crc))
	}
	dw := &sectionWriter{pf: w.pf}
	if _, err := dw.Write(dir); err != nil {
		w.pf.Close()
		return err
	}
	if err := dw.finish(); err != nil {
		w.pf.Close()
		return err
	}
	if err := w.pf.WriteHeader(dw.firstPage); err != nil {
		w.pf.Close()
		return err
	}
	return w.pf.Close()
}

// Reader opens snapshot files for verified section access.
type Reader struct {
	pf      *PageFile
	entries map[string]dirEntry
	dirLen  int64
}

// OpenReader opens a snapshot file, verifying header and directory.
func OpenReader(path string) (*Reader, error) {
	pf, dirPage, err := OpenPageFile(path)
	if err != nil {
		return nil, err
	}
	r := &Reader{pf: pf, entries: make(map[string]dirEntry)}
	// The directory extends from dirPage to the end of the file; its byte
	// length is bounded by the remaining pages, and entries are
	// self-delimiting.
	remain := (pf.NumPages() - dirPage) * pagePayload
	sr := &sectionReader{pf: pf, page: dirPage, remain: remain, want: 0}
	sr.want = sr.crc // directory has no independent CRC; page CRCs cover it
	br := &byteCounter{r: sr}
	nEntries, err := binary.ReadUvarint(br)
	if err != nil {
		pf.Close()
		return nil, fmt.Errorf("%w: directory: %v", ErrCorrupt, err)
	}
	for i := uint64(0); i < nEntries; i++ {
		nameLen, err := binary.ReadUvarint(br)
		if err != nil || nameLen > 4096 {
			pf.Close()
			return nil, fmt.Errorf("%w: directory entry", ErrCorrupt)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			pf.Close()
			return nil, fmt.Errorf("%w: directory entry name", ErrCorrupt)
		}
		first, err1 := binary.ReadUvarint(br)
		length, err2 := binary.ReadUvarint(br)
		crc, err3 := binary.ReadUvarint(br)
		if err1 != nil || err2 != nil || err3 != nil {
			pf.Close()
			return nil, fmt.Errorf("%w: directory entry fields", ErrCorrupt)
		}
		r.entries[string(name)] = dirEntry{
			name:      string(name),
			firstPage: int64(first),
			length:    int64(length),
			crc:       uint32(crc),
		}
	}
	return r, nil
}

type byteCounter struct {
	r   io.Reader
	one [1]byte
}

func (b *byteCounter) Read(p []byte) (int, error) { return b.r.Read(p) }

func (b *byteCounter) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.one[:]); err != nil {
		return 0, err
	}
	return b.one[0], nil
}

// Section returns a verified reader over the named section. The returned
// reader validates the whole-section CRC at EOF.
func (r *Reader) Section(name string) (io.Reader, error) {
	e, ok := r.entries[name]
	if !ok {
		return nil, fmt.Errorf("storage: no section %q", name)
	}
	return &sectionReader{pf: r.pf, page: e.firstPage, remain: e.length, want: e.crc}, nil
}

// SectionLen reports the byte length of a section, or -1 if absent. It
// backs the storage-size measurements of Figure 9.
func (r *Reader) SectionLen(name string) int64 {
	if e, ok := r.entries[name]; ok {
		return e.length
	}
	return -1
}

// Sections lists stored section names in sorted order.
func (r *Reader) Sections() []string {
	out := make([]string, 0, len(r.entries))
	for n := range r.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Close closes the underlying file.
func (r *Reader) Close() error { return r.pf.Close() }
