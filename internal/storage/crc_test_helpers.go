package storage

import (
	"encoding/binary"
	"hash/crc32"
)

// Helpers shared with tests that need to forge checksums.

func crc32ChecksumIEEE(p []byte) uint32 { return crc32.ChecksumIEEE(p) }

func putU32(dst []byte, v uint32) { binary.LittleEndian.PutUint32(dst, v) }
