package storage

// Write-ahead log: an append-only file of CRC-framed records that makes
// index updates durable between snapshots. The framing reuses the
// pagefile's conventions (little-endian fixed headers, CRC32/IEEE), but
// records are variable-length — a log is written once per operation and
// read once at recovery, so page alignment buys nothing here.
//
// Layout:
//
//	bytes 0..7:   magic "XVIWAL01"
//	then records: [u32 payload length][u32 CRC32(kind ∥ payload)]
//	              [u8 kind][payload]
//
// The CRC covers the kind byte and the payload, so a torn write — a
// record whose tail never reached the disk, or whose sectors landed
// partially — is detected and treated as the end of the log: everything
// before it is replayed, the torn record and anything after it is
// discarded. OpenWAL truncates such a tail so subsequent appends extend
// a clean log.
//
// Durability is batched: Append counts records and calls fsync once
// every SyncEvery appends (and on Close). Larger batches amortise the
// fsync — the dominant cost of a durable update — at the price of the
// tail of the batch being lost on a crash. Lost records are never
// half-applied: the CRC framing makes record durability atomic.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

const (
	walMagic = "XVIWAL01"
	// walFrameSize is the fixed per-record framing overhead:
	// u32 length + u32 crc + u8 kind.
	walFrameSize = 9
	// walMaxRecord bounds a single record payload (sanity check against
	// reading a garbage length from a corrupt frame).
	walMaxRecord = 1 << 30
)

// RecordKind tags the operation a WAL record encodes. The payload format
// of each kind is owned by the layer that writes it (internal/core); the
// storage layer only frames and checksums.
type RecordKind uint8

const (
	// RecCheckpoint marks a snapshot boundary: everything before it is
	// contained in the snapshot the marker's generation names. Written as
	// the first record of a freshly reset log.
	RecCheckpoint RecordKind = 1
	// RecTextBatch is a batch of text-node value updates (one per
	// UpdateTexts call — and therefore one per transaction commit).
	RecTextBatch RecordKind = 2
	// RecAttrUpdate is a single attribute value update.
	RecAttrUpdate RecordKind = 3
	// RecDelete is a subtree deletion.
	RecDelete RecordKind = 4
	// RecInsert is a fragment insertion.
	RecInsert RecordKind = 5
)

func (k RecordKind) String() string {
	switch k {
	case RecCheckpoint:
		return "checkpoint"
	case RecTextBatch:
		return "text-batch"
	case RecAttrUpdate:
		return "attr-update"
	case RecDelete:
		return "delete"
	case RecInsert:
		return "insert"
	default:
		return fmt.Sprintf("RecordKind(%d)", uint8(k))
	}
}

// Record is one framed WAL entry.
type Record struct {
	Kind    RecordKind
	Payload []byte
}

// WAL is an open write-ahead log positioned for appending. It is not
// safe for concurrent use; callers serialise through their own write
// lock (core.Indexes appends under its update mutex).
type WAL struct {
	f    *os.File
	path string
	size int64 // current valid length in bytes

	// SyncEvery batches fsyncs: the file is synced once every SyncEvery
	// appends. 1 (or 0) syncs every record — the safest and slowest
	// setting.
	syncEvery int
	pending   int

	// err is sticky: the first I/O failure poisons the log, and every
	// subsequent operation returns it. Fail-stop is the only sound
	// response — after a failed write or fsync the log's tail state is
	// unknown, so pretending later appends are durable would break the
	// recovery contract.
	err error

	frame [walFrameSize]byte
}

// fail records the first I/O error and returns it.
func (w *WAL) fail(err error) error {
	if w.err == nil {
		w.err = err
	}
	return w.err
}

// CreateWAL creates (truncating) a write-ahead log at path. syncEvery
// <= 1 syncs after every append.
func CreateWAL(path string, syncEvery int) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	w := &WAL{f: f, path: path, syncEvery: syncEvery}
	if _, err := f.WriteAt([]byte(walMagic), 0); err != nil {
		f.Close()
		return nil, err
	}
	w.size = int64(len(walMagic))
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// OpenWAL opens an existing log (creating an empty one if absent), scans
// its records, repairs a torn tail by truncating it, and returns the
// valid records in append order together with the log positioned for
// appending.
func OpenWAL(path string, syncEvery int) (*WAL, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	w := &WAL{f: f, path: path, syncEvery: syncEvery}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if st.Size() < int64(len(walMagic)) {
		// Empty or torn-at-birth log: rewrite the header.
		if _, err := f.WriteAt([]byte(walMagic), 0); err != nil {
			f.Close()
			return nil, nil, err
		}
		w.size = int64(len(walMagic))
		if err := f.Truncate(w.size); err != nil {
			f.Close()
			return nil, nil, err
		}
		return w, nil, nil
	}
	var magicBuf [len(walMagic)]byte
	if _, err := f.ReadAt(magicBuf[:], 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	if string(magicBuf[:]) != walMagic {
		f.Close()
		return nil, nil, fmt.Errorf("%w: bad WAL magic", ErrCorrupt)
	}
	records, end, err := scanRecords(f, int64(len(walMagic)), st.Size())
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if end < st.Size() {
		// Torn or corrupt tail: drop it so future appends extend a log
		// whose every byte is a valid record.
		if err := f.Truncate(end); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	w.size = end
	return w, records, nil
}

// scanRecords reads frames from off to fileSize, stopping at the first
// invalid one. It returns the valid records and the offset one past the
// last valid record.
func scanRecords(r io.ReaderAt, off, fileSize int64) ([]Record, int64, error) {
	var records []Record
	var frame [walFrameSize]byte
	for {
		if off+walFrameSize > fileSize {
			return records, off, nil // torn frame header (or clean EOF)
		}
		if _, err := r.ReadAt(frame[:], off); err != nil {
			return nil, 0, err
		}
		length := int64(binary.LittleEndian.Uint32(frame[0:]))
		want := binary.LittleEndian.Uint32(frame[4:])
		kind := RecordKind(frame[8])
		if length > walMaxRecord || off+walFrameSize+length > fileSize {
			return records, off, nil // torn payload
		}
		payload := make([]byte, length)
		if _, err := r.ReadAt(payload, off+walFrameSize); err != nil {
			return nil, 0, err
		}
		crc := crc32.ChecksumIEEE(frame[8:9])
		crc = crc32.Update(crc, crc32.IEEETable, payload)
		if crc != want {
			return records, off, nil // torn or bit-rotted record
		}
		records = append(records, Record{Kind: kind, Payload: payload})
		off += walFrameSize + length
	}
}

// Append frames one record and writes it at the end of the log, syncing
// per the batching policy. The record is durable once the batch it
// belongs to has been synced (immediately when SyncEvery <= 1).
func (w *WAL) Append(kind RecordKind, payload []byte) error {
	if w.err != nil {
		return w.err
	}
	if len(payload) > walMaxRecord {
		return fmt.Errorf("storage: WAL record of %d bytes exceeds limit", len(payload))
	}
	preSize := w.size
	binary.LittleEndian.PutUint32(w.frame[0:], uint32(len(payload)))
	crc := crc32.ChecksumIEEE([]byte{byte(kind)})
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	binary.LittleEndian.PutUint32(w.frame[4:], crc)
	w.frame[8] = byte(kind)
	if _, err := w.f.WriteAt(w.frame[:], w.size); err != nil {
		return w.fail(err)
	}
	if _, err := w.f.WriteAt(payload, w.size+walFrameSize); err != nil {
		return w.fail(err)
	}
	w.size += walFrameSize + int64(len(payload))
	w.pending++
	if w.syncEvery <= 1 || w.pending >= w.syncEvery {
		if err := w.syncNow(); err != nil {
			// The record is written but not durable, and the caller will
			// treat the operation as failed and not apply it: drop the
			// record (best effort — the log is poisoned either way) so
			// recovery cannot replay an operation that never happened.
			w.f.Truncate(preSize)
			w.size = preSize
			return err
		}
	}
	return nil
}

// Sync forces pending records to stable storage. A failure poisons the
// log: the unsynced records stay pending and every later operation
// reports the error, so a caller can never be told a lost tail is
// durable.
func (w *WAL) Sync() error {
	if w.err != nil {
		return w.err
	}
	if w.pending == 0 {
		return nil
	}
	return w.syncNow()
}

func (w *WAL) syncNow() error {
	if err := w.f.Sync(); err != nil {
		return w.fail(err)
	}
	w.pending = 0
	return nil
}

// Reset truncates the log back to its header — everything logged so far
// is forgotten — and syncs. Used by checkpointing after the snapshot
// that contains those records has been durably written.
func (w *WAL) Reset() error {
	if w.err != nil {
		return w.err
	}
	if err := w.f.Truncate(int64(len(walMagic))); err != nil {
		return w.fail(err)
	}
	w.size = int64(len(walMagic))
	w.pending = 0
	if err := w.f.Sync(); err != nil {
		return w.fail(err)
	}
	return nil
}

// Size reports the current length of the log in bytes (header included).
func (w *WAL) Size() int64 { return w.size }

// Path reports the log's file path.
func (w *WAL) Path() string { return w.path }

// Close syncs pending records and closes the file.
func (w *WAL) Close() error {
	if err := w.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// ReplayWAL reads the records of the log at path without opening it for
// writing: every valid record in order, stopping silently at the first
// torn or corrupt one (recovery semantics). A missing file replays zero
// records.
func ReplayWAL(path string, fn func(Record) error) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if st.Size() < int64(len(walMagic)) {
		return nil
	}
	var magicBuf [len(walMagic)]byte
	if _, err := f.ReadAt(magicBuf[:], 0); err != nil {
		return err
	}
	if string(magicBuf[:]) != walMagic {
		return fmt.Errorf("%w: bad WAL magic", ErrCorrupt)
	}
	records, _, err := scanRecords(f, int64(len(walMagic)), st.Size())
	if err != nil {
		return err
	}
	for _, rec := range records {
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}
