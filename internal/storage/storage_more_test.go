package storage

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestOpenPageFileErrors(t *testing.T) {
	dir := t.TempDir()

	// Missing file.
	if _, _, err := OpenPageFile(filepath.Join(dir, "missing.db")); err == nil {
		t.Error("missing file must error")
	}

	// Not page aligned.
	p := filepath.Join(dir, "ragged.db")
	os.WriteFile(p, make([]byte, PageSize+100), 0o644)
	if _, _, err := OpenPageFile(p); err == nil {
		t.Error("ragged file must error")
	}

	// Wrong magic.
	p = filepath.Join(dir, "magic.db")
	os.WriteFile(p, make([]byte, PageSize), 0o644)
	if _, _, err := OpenPageFile(p); err == nil {
		t.Error("zeroed header must error")
	}

	// Wrong version: forge a header with valid CRC but version 99.
	p = filepath.Join(dir, "version.db")
	h := make([]byte, PageSize)
	copy(h, magic)
	putU32(h[8:], 99)
	putU32(h[12:], 1) // nPages low word (stored as u64; high word zero)
	putU32(h[pagePayload:], crc32ChecksumIEEE(h[:pagePayload]))
	os.WriteFile(p, h, 0o644)
	if _, _, err := OpenPageFile(p); err == nil {
		t.Error("future version must error")
	}

	// Header page-count mismatch.
	p = filepath.Join(dir, "count.db")
	h = make([]byte, 2*PageSize)
	copy(h, magic)
	putU32(h[8:], formatVersion)
	putU32(h[12:], 9) // claims 9 pages, file has 2
	putU32(h[pagePayload:], crc32ChecksumIEEE(h[:pagePayload]))
	os.WriteFile(p, h, 0o644)
	if _, _, err := OpenPageFile(p); err == nil {
		t.Error("page-count mismatch must error")
	}
}

func TestOpenReaderRejectsBrokenDirectory(t *testing.T) {
	// A valid page file whose directory pointer aims at a page of noise.
	path := filepath.Join(t.TempDir(), "dir.db")
	pf, err := CreatePageFile(path)
	if err != nil {
		t.Fatal(err)
	}
	noise := bytes.Repeat([]byte{0xFF}, 64) // uvarint entry count = huge
	pg, err := pf.AppendPage(noise)
	if err != nil {
		t.Fatal(err)
	}
	if err := pf.WriteHeader(pg); err != nil {
		t.Fatal(err)
	}
	pf.Close()
	if _, err := OpenReader(path); err == nil {
		t.Error("nonsense directory must be rejected")
	}
}

func TestWriterSectionAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "closed.db")
	w, err := NewWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Section("late"); err == nil {
		t.Error("Section after Close must fail")
	}
	if err := w.Close(); err != nil {
		t.Errorf("double Close should be a no-op, got %v", err)
	}
}

func TestManySmallSections(t *testing.T) {
	path := filepath.Join(t.TempDir(), "many.db")
	w, err := NewWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		sec, err := w.Section(string(rune('a'+i%26)) + string(rune('0'+i/26)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sec.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := len(r.Sections()); got != n {
		t.Fatalf("sections = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		name := string(rune('a'+i%26)) + string(rune('0'+i/26))
		sec, err := r.Section(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(sec)
		if err != nil || len(b) != 1 || b[0] != byte(i) {
			t.Fatalf("section %s = %v (%v)", name, b, err)
		}
	}
}

func TestSectionReaderByteInterface(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bytes.db")
	w, _ := NewWriter(path)
	sec, _ := w.Section("s")
	sec.Write([]byte{1, 2, 3})
	w.Close()
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, _ := r.Section("s")
	br, ok := got.(io.ByteReader)
	if !ok {
		t.Fatal("section reader must implement io.ByteReader for varint decoding")
	}
	for want := byte(1); want <= 3; want++ {
		b, err := br.ReadByte()
		if err != nil || b != want {
			t.Fatalf("ReadByte = %d,%v want %d", b, err, want)
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		t.Errorf("ReadByte at EOF = %v", err)
	}
}
