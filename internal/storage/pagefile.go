// Package storage implements the simple persistence layer the indices and
// documents are measured against in the storage experiments (Figure 9,
// bottom): a page-structured file with per-page CRC32 checksums and a
// named-section snapshot format layered on top.
//
// Layout:
//
//	page 0:        header — magic, format version, page count, directory
//	               location, header CRC
//	pages 1..n-1:  payload — 8 KiB pages, each trailered with its CRC32
//
// Sections are byte streams chunked into consecutive pages; the directory
// (itself a section at the end of the file) maps section names to page
// extents, byte lengths, and whole-section CRCs. Every read path verifies
// checksums, so torn or corrupted files are detected instead of being
// half-loaded.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

const (
	// PageSize is the unit of allocation and checksumming.
	PageSize = 8192
	// pagePayload is the usable space per page after the CRC trailer.
	pagePayload = PageSize - 4

	magic         = "XVIDB001"
	headerPages   = 1
	formatVersion = 1
)

// ErrCorrupt reports checksum or structural failures in a stored file.
var ErrCorrupt = errors.New("storage: corrupt file")

// PageFile is an append-oriented paged file. Pages are written once and
// verified with CRC32 on read.
type PageFile struct {
	f        *os.File
	nPages   int64
	writable bool
	buf      [PageSize]byte
}

// CreatePageFile creates (truncating) a page file at path.
func CreatePageFile(path string) (*PageFile, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	pf := &PageFile{f: f, nPages: headerPages, writable: true}
	// Reserve the header; finalised by WriteHeader.
	if err := pf.f.Truncate(PageSize); err != nil {
		f.Close()
		return nil, err
	}
	return pf, nil
}

// OpenPageFile opens an existing page file and verifies its header.
func OpenPageFile(path string) (*PageFile, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	pf := &PageFile{f: f}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	if st.Size()%PageSize != 0 || st.Size() < PageSize {
		f.Close()
		return nil, 0, fmt.Errorf("%w: size %d not page aligned", ErrCorrupt, st.Size())
	}
	pf.nPages = st.Size() / PageSize
	dirPage, err := pf.readHeader()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return pf, dirPage, nil
}

// AppendPage writes one page of payload (at most pagePayload bytes) with
// its checksum and returns its page number.
func (pf *PageFile) AppendPage(payload []byte) (int64, error) {
	if len(payload) > pagePayload {
		return 0, fmt.Errorf("storage: payload %d exceeds page capacity", len(payload))
	}
	page := pf.nPages
	copy(pf.buf[:], payload)
	for i := len(payload); i < pagePayload; i++ {
		pf.buf[i] = 0
	}
	crc := crc32.ChecksumIEEE(pf.buf[:pagePayload])
	binary.LittleEndian.PutUint32(pf.buf[pagePayload:], crc)
	if _, err := pf.f.WriteAt(pf.buf[:], page*PageSize); err != nil {
		return 0, err
	}
	pf.nPages++
	return page, nil
}

// ReadPage reads and checksum-verifies page number p into a fresh buffer
// of pagePayload bytes.
func (pf *PageFile) ReadPage(p int64, dst []byte) error {
	if p < 0 || p >= pf.nPages {
		return fmt.Errorf("%w: page %d out of range", ErrCorrupt, p)
	}
	var buf [PageSize]byte
	if _, err := pf.f.ReadAt(buf[:], p*PageSize); err != nil {
		return err
	}
	want := binary.LittleEndian.Uint32(buf[pagePayload:])
	if got := crc32.ChecksumIEEE(buf[:pagePayload]); got != want {
		return fmt.Errorf("%w: page %d checksum %#x, want %#x", ErrCorrupt, p, got, want)
	}
	copy(dst, buf[:pagePayload])
	return nil
}

// WriteHeader finalises the file: it records the directory page and page
// count in page 0.
func (pf *PageFile) WriteHeader(dirPage int64) error {
	var h [PageSize]byte
	copy(h[:], magic)
	binary.LittleEndian.PutUint32(h[8:], formatVersion)
	binary.LittleEndian.PutUint64(h[12:], uint64(pf.nPages))
	binary.LittleEndian.PutUint64(h[20:], uint64(dirPage))
	crc := crc32.ChecksumIEEE(h[:pagePayload])
	binary.LittleEndian.PutUint32(h[pagePayload:], crc)
	if _, err := pf.f.WriteAt(h[:], 0); err != nil {
		return err
	}
	return pf.f.Sync()
}

func (pf *PageFile) readHeader() (int64, error) {
	var h [PageSize]byte
	if _, err := pf.f.ReadAt(h[:], 0); err != nil {
		return 0, err
	}
	if string(h[:len(magic)]) != magic {
		return 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(h[8:]); v != formatVersion {
		return 0, fmt.Errorf("storage: unsupported format version %d", v)
	}
	want := binary.LittleEndian.Uint32(h[pagePayload:])
	if got := crc32.ChecksumIEEE(h[:pagePayload]); got != want {
		return 0, fmt.Errorf("%w: header checksum", ErrCorrupt)
	}
	nPages := int64(binary.LittleEndian.Uint64(h[12:]))
	if nPages != pf.nPages {
		return 0, fmt.Errorf("%w: header claims %d pages, file has %d", ErrCorrupt, nPages, pf.nPages)
	}
	return int64(binary.LittleEndian.Uint64(h[20:])), nil
}

// NumPages reports the current page count (including the header page).
func (pf *PageFile) NumPages() int64 { return pf.nPages }

// Close closes the underlying file. Writable files are fsynced first:
// WriteHeader syncs the header it writes, but pages appended after it
// (or a file closed without a header) would otherwise sit in OS caches
// with no durability guarantee when Close returns.
func (pf *PageFile) Close() error {
	if pf.writable {
		if err := pf.f.Sync(); err != nil {
			pf.f.Close()
			return err
		}
	}
	return pf.f.Close()
}

// Sync forces written pages to stable storage.
func (pf *PageFile) Sync() error { return pf.f.Sync() }

// sectionWriter streams bytes into consecutive pages of a PageFile.
type sectionWriter struct {
	pf        *PageFile
	buf       []byte
	firstPage int64
	length    int64
	crc       uint32
	started   bool
	err       error
}

func (sw *sectionWriter) Write(p []byte) (int, error) {
	if sw.err != nil {
		return 0, sw.err
	}
	sw.crc = crc32.Update(sw.crc, crc32.IEEETable, p)
	sw.length += int64(len(p))
	sw.buf = append(sw.buf, p...)
	for len(sw.buf) >= pagePayload {
		page, err := sw.pf.AppendPage(sw.buf[:pagePayload])
		if err != nil {
			sw.err = err
			return 0, err
		}
		if !sw.started {
			sw.firstPage = page
			sw.started = true
		}
		sw.buf = sw.buf[pagePayload:]
	}
	return len(p), nil
}

func (sw *sectionWriter) finish() error {
	if sw.err != nil {
		return sw.err
	}
	if len(sw.buf) > 0 || !sw.started {
		page, err := sw.pf.AppendPage(sw.buf)
		if err != nil {
			sw.err = err
			return err
		}
		if !sw.started {
			sw.firstPage = page
			sw.started = true
		}
		sw.buf = nil
	}
	return nil
}

// sectionReader streams a section's bytes back out of its page extent.
type sectionReader struct {
	pf     *PageFile
	page   int64
	remain int64
	buf    []byte
	off    int
	crc    uint32
	want   uint32
	err    error
}

func (sr *sectionReader) Read(p []byte) (int, error) {
	if sr.err != nil {
		return 0, sr.err
	}
	if sr.remain == 0 && sr.off >= len(sr.buf) {
		if sr.crc != sr.want {
			sr.err = fmt.Errorf("%w: section checksum %#x, want %#x", ErrCorrupt, sr.crc, sr.want)
			return 0, sr.err
		}
		return 0, io.EOF
	}
	if sr.off >= len(sr.buf) {
		if sr.buf == nil {
			sr.buf = make([]byte, pagePayload)
		}
		if err := sr.pf.ReadPage(sr.page, sr.buf); err != nil {
			sr.err = err
			return 0, err
		}
		sr.page++
		n := int64(pagePayload)
		if n > sr.remain {
			n = sr.remain
		}
		sr.buf = sr.buf[:n]
		sr.remain -= n
		sr.off = 0
		sr.crc = crc32.Update(sr.crc, crc32.IEEETable, sr.buf)
	}
	n := copy(p, sr.buf[sr.off:])
	sr.off += n
	return n, nil
}

func (sr *sectionReader) ReadByte() (byte, error) {
	var one [1]byte
	for {
		n, err := sr.Read(one[:])
		if n == 1 {
			return one[0], nil
		}
		if err != nil {
			return 0, err
		}
	}
}
