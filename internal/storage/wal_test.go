package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func walPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "test.wal")
}

func TestWALRoundTrip(t *testing.T) {
	path := walPath(t)
	w, err := CreateWAL(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Kind: RecCheckpoint, Payload: []byte{1}},
		{Kind: RecTextBatch, Payload: []byte("hello")},
		{Kind: RecDelete, Payload: nil},
		{Kind: RecInsert, Payload: bytes.Repeat([]byte{0xAB}, 10_000)},
	}
	for _, r := range recs {
		if err := w.Append(r.Kind, r.Payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	_, got, err := OpenWAL(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		if r.Kind != recs[i].Kind || !bytes.Equal(r.Payload, recs[i].Payload) {
			t.Fatalf("record %d = %v/%d bytes, want %v/%d bytes", i, r.Kind, len(r.Payload), recs[i].Kind, len(recs[i].Payload))
		}
	}
}

func TestWALReplayFunc(t *testing.T) {
	path := walPath(t)
	w, err := CreateWAL(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Append(RecTextBatch, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil { // Close syncs the partial batch
		t.Fatal(err)
	}
	n := 0
	err = ReplayWAL(path, func(r Record) error {
		if r.Kind != RecTextBatch || r.Payload[0] != byte(n) {
			t.Fatalf("record %d = %v %v", n, r.Kind, r.Payload)
		}
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("replayed %d records, want 10", n)
	}
}

func TestWALReplayMissingFile(t *testing.T) {
	err := ReplayWAL(filepath.Join(t.TempDir(), "nope.wal"), func(Record) error {
		t.Fatal("callback on missing file")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWALTornTailTruncatedOnOpen(t *testing.T) {
	path := walPath(t)
	w, err := CreateWAL(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(RecTextBatch, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(RecTextBatch, []byte("second")); err != nil {
		t.Fatal(err)
	}
	goodSize := w.Size()
	if err := w.Append(RecTextBatch, []byte("torn")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record: drop its final 2 bytes.
	if err := os.Truncate(path, w.Size()-2); err != nil {
		t.Fatal(err)
	}

	w2, recs, err := OpenWAL(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want 2", len(recs))
	}
	if w2.Size() != goodSize {
		t.Fatalf("repaired size %d, want %d", w2.Size(), goodSize)
	}
	// Appends after repair extend a clean log.
	if err := w2.Append(RecDelete, []byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err = OpenWAL(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || string(recs[2].Payload) != "after" {
		t.Fatalf("after repair+append got %d records", len(recs))
	}
}

func TestWALCorruptRecordStopsReplay(t *testing.T) {
	path := walPath(t)
	w, err := CreateWAL(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	payloads := []string{"one", "two", "three"}
	offsets := []int64{}
	for _, p := range payloads {
		offsets = append(offsets, w.Size())
		if err := w.Append(RecTextBatch, []byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the second record.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[offsets[1]+walFrameSize] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, recs, err := OpenWAL(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Replay must stop at the corrupt record: only "one" survives; the
	// corrupt suffix (including the valid-looking "three") is discarded.
	if len(recs) != 1 || string(recs[0].Payload) != "one" {
		t.Fatalf("recovered %d records (first %q), want just \"one\"", len(recs), recs[0].Payload)
	}
}

func TestWALResetForgetsRecords(t *testing.T) {
	path := walPath(t)
	w, err := CreateWAL(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(RecTextBatch, []byte("gone")); err != nil {
		t.Fatal(err)
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(RecCheckpoint, []byte{7}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err := OpenWAL(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Kind != RecCheckpoint {
		t.Fatalf("after reset got %d records", len(recs))
	}
}

func TestWALBadMagic(t *testing.T) {
	path := walPath(t)
	if err := os.WriteFile(path, []byte("NOTAWAL0 and then some"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(path, 1); err == nil {
		t.Fatal("OpenWAL accepted bad magic")
	}
	if err := ReplayWAL(path, func(Record) error { return nil }); err == nil {
		t.Fatal("ReplayWAL accepted bad magic")
	}
}

func TestWALSyncBatching(t *testing.T) {
	// Batched appends must still all be readable after Close (which
	// flushes the partial batch).
	path := walPath(t)
	w, err := CreateWAL(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := w.Append(RecTextBatch, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err := OpenWAL(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 100 {
		t.Fatalf("got %d records, want 100", len(recs))
	}
}

// TestWALIOErrorPoisonsLog pins the fail-stop contract: after the first
// I/O failure every subsequent operation reports the error — a caller
// can never be told that records written after a failure are durable.
func TestWALIOErrorPoisonsLog(t *testing.T) {
	path := walPath(t)
	w, err := CreateWAL(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(RecTextBatch, []byte("good")); err != nil {
		t.Fatal(err)
	}
	// Simulate the device failing: pull the file out from under the log.
	if err := w.f.Close(); err != nil {
		t.Fatal(err)
	}
	first := w.Append(RecTextBatch, []byte("bad"))
	if first == nil {
		t.Fatal("Append on failed file succeeded")
	}
	if err := w.Append(RecTextBatch, []byte("bad2")); err == nil {
		t.Fatal("poisoned log accepted a second append")
	}
	if err := w.Sync(); err == nil {
		t.Fatal("poisoned log reported a clean sync")
	}
	if err := w.Reset(); err == nil {
		t.Fatal("poisoned log allowed a reset")
	}
	// Only the pre-failure record is recoverable.
	_, recs, err := OpenWAL(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Payload) != "good" {
		t.Fatalf("recovered %d records, want just the pre-failure one", len(recs))
	}
}
