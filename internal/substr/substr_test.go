package substr

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/xmlparse"
	"repro/internal/xmltree"
)

func buildIndex(t testing.TB, xml string) (*core.Indexes, *Index) {
	t.Helper()
	doc, err := xmlparse.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	ix := core.Build(doc, core.Options{String: true})
	return ix, Build(ix)
}

func TestContainsBasic(t *testing.T) {
	_, s := buildIndex(t, `<r><a>hello world</a><b>goodbye world</b><c id="worldly">nothing here</c></r>`)
	hits := s.Contains("world")
	if len(hits) != 3 { // two texts + the attribute
		t.Fatalf("Contains(world) = %d hits", len(hits))
	}
	hits = s.Contains("hello")
	if len(hits) != 1 {
		t.Fatalf("Contains(hello) = %d hits", len(hits))
	}
	if hits := s.Contains("absent-pattern"); len(hits) != 0 {
		t.Fatalf("Contains(absent) = %d hits", len(hits))
	}
}

func TestContainsShortPatternFallsBack(t *testing.T) {
	_, s := buildIndex(t, `<r><a>xyz</a><b>axbycz</b></r>`)
	hits := s.Contains("xy")
	if len(hits) != 1 {
		t.Fatalf("short pattern = %d hits", len(hits))
	}
}

func TestContainsMatchesScanRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zetetic"}
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 300; i++ {
		sb.WriteString("<x>")
		for j := 0; j < 1+rng.Intn(5); j++ {
			sb.WriteString(words[rng.Intn(len(words))])
			sb.WriteString(" ")
		}
		sb.WriteString("</x>")
	}
	sb.WriteString("</r>")
	_, s := buildIndex(t, sb.String())
	patterns := []string{"alp", "eta", "gamma", "delta eps", "zet", "a b", "lpha gam", "nosuchthing"}
	for _, p := range patterns {
		idx := postingSet(s.Contains(p))
		scan := postingSet(s.ScanContains(p))
		if idx != scan {
			t.Errorf("pattern %q: indexed %v != scan %v", p, idx, scan)
		}
	}
}

func postingSet(ps []core.Posting) string {
	keys := make([]string, 0, len(ps))
	for _, p := range ps {
		keys = append(keys, fmt.Sprintf("%v/%d/%d", p.IsAttr, p.Node, p.Attr))
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

func TestSyncTextMaintainsIndex(t *testing.T) {
	ix, s := buildIndex(t, `<r><a>first value</a><b>second value</b></r>`)
	doc := ix.Doc()
	var txt xmltree.NodeID
	for i := 0; i < doc.NumNodes(); i++ {
		if doc.Kind(xmltree.NodeID(i)) == xmltree.Text && doc.Value(xmltree.NodeID(i)) == "first value" {
			txt = xmltree.NodeID(i)
		}
	}
	if err := ix.UpdateText(txt, "replacement text"); err != nil {
		t.Fatal(err)
	}
	s.SyncText(txt)
	if hits := s.Contains("first"); len(hits) != 0 {
		t.Errorf("stale pattern still found: %d", len(hits))
	}
	if hits := s.Contains("replacement"); len(hits) != 1 {
		t.Errorf("new pattern not found: %d", len(hits))
	}
	if hits := s.Contains("value"); len(hits) != 1 {
		t.Errorf("Contains(value) = %d, want 1", len(hits))
	}
	// Update to a gram-less (short) value.
	if err := ix.UpdateText(txt, "xy"); err != nil {
		t.Fatal(err)
	}
	s.SyncText(txt)
	if hits := s.Contains("replacement"); len(hits) != 0 {
		t.Errorf("grams of removed text remain: %d", len(hits))
	}
}

func TestStartsWithMatchesScan(t *testing.T) {
	ix, s := buildIndex(t, `<r><a>prefix one</a><b>prefix two</b><c id="prefab">other</c><d>a prefix inside</d></r>`)
	got := postingSet(s.StartsWith("pref"))
	want := postingSet(ix.ScanStartsWith("pref"))
	if got != want {
		t.Fatalf("StartsWith(pref): indexed %v != scan %v", got, want)
	}
	if n := len(s.StartsWith("prefix ")); n != 2 {
		t.Fatalf("StartsWith(prefix ) = %d hits, want 2", n)
	}
}

func TestLenGrowsWithContent(t *testing.T) {
	_, small := buildIndex(t, `<r><a>tiny</a></r>`)
	_, big := buildIndex(t, `<r><a>`+strings.Repeat("many different words here ", 50)+`</a></r>`)
	if small.Len() >= big.Len() {
		t.Errorf("Len: small %d, big %d", small.Len(), big.Len())
	}
}

func BenchmarkContainsIndexed(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<r>")
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&sb, "<x>document text number %d with filler %d</x>", i, rng.Intn(1000))
	}
	sb.WriteString("<x>the unique needle sentence</x></r>")
	_, s := buildIndex(b, sb.String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.Contains("needle sentence")) != 1 {
			b.Fatal("needle missing")
		}
	}
}

func BenchmarkContainsScan(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&sb, "<x>document text number %d</x>", i)
	}
	sb.WriteString("<x>the unique needle sentence</x></r>")
	_, s := buildIndex(b, sb.String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.ScanContains("needle sentence")) != 1 {
			b.Fatal("needle missing")
		}
	}
}
