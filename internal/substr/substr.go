// Package substr is the historical home of the q-gram substring index —
// the paper's stated future work ("indices capable of answering queries
// that involve substring matching"). The index itself now lives inside
// internal/core's versioned Snapshot (core/substr.go): it is cloned
// copy-on-write and maintained by every commit path exactly like the
// hash and typed indices, so a reader pinning one snapshot sees a
// substring index consistent with that snapshot's document, and
// followers replaying shipped records converge to the leader's index
// byte for byte.
//
// What remains here is the thin compatibility handle (Build/Contains)
// plus the index-free scan oracle the property tests compare the index
// against.
package substr

import (
	"repro/internal/core"
	"repro/internal/xmltree"
)

// Q is the gram width, re-exported from the core index.
const Q = core.SubstrQ

// Index is a handle over a document's core-resident substring index.
// All methods answer against the currently published snapshot.
type Index struct {
	ix *core.Indexes
}

// Build enables the substring index on ix (idempotent; commits maintain
// it from then on) and returns a handle.
func Build(ix *core.Indexes) *Index {
	ix.EnableSubstring()
	return &Index{ix: ix}
}

// Contains returns the text and attribute nodes whose value contains
// pattern, verified, in document order. Patterns shorter than Q fall
// back to scanning.
func (s *Index) Contains(pattern string) []core.Posting {
	return s.ix.Contains(pattern)
}

// StartsWith returns the text and attribute nodes whose value starts
// with pattern.
func (s *Index) StartsWith(pattern string) []core.Posting {
	return s.ix.StartsWith(pattern)
}

// ScanContains is the index-free baseline: every text and attribute
// value tested in document order.
func (s *Index) ScanContains(pattern string) []core.Posting {
	return s.ix.ScanContains(pattern)
}

// SyncText is a no-op kept for callers of the pre-MVCC API: the commit
// that changed the text node already maintained the index.
func (s *Index) SyncText(xmltree.NodeID) {}

// Len reports the number of (gram, posting) entries in the index.
func (s *Index) Len() int { return s.ix.Stats().SubstringEntries }

// Scan is the package-level oracle: the nodes and attributes whose
// value contains pattern, found without any index.
func Scan(ix *core.Indexes, pattern string) []core.Posting {
	return ix.ScanContains(pattern)
}
