// Package substr implements the extension the paper names as future work
// in its conclusions: "indices capable of answering queries that involve
// substring matching and regular expressions".
//
// The index is a positional q-gram index over node string values, built
// with the same design constraints as the paper's value indices:
//
//   - generic: covers every text and attribute value, no configured paths;
//   - compact: stores 32-bit gram hashes and postings, never text;
//   - candidate-based: like the hash equi-index, lookups return candidate
//     nodes that are verified against the document, so q-gram collisions
//     cost time, never correctness.
//
// A substring query of length >= Q intersects the posting lists of its
// grams; shorter patterns fall back to scanning. Updates reuse the value
// index maintenance discipline: changed nodes are re-grammed and the
// B+tree is diffed.
package substr

import (
	"sort"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/xmltree"
)

// Q is the gram length. Three balances selectivity against index size for
// the evaluation corpora (mostly ASCII text).
const Q = 3

// gramHash hashes a q-gram into the B+tree key space. FNV-style mixing
// keeps distinct grams distinct with high probability; collisions only
// add verification work.
func gramHash(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h = (h ^ uint32(c)) * 16777619
	}
	return h
}

// Index is a q-gram substring index over one document's values. It is
// built against a core.Indexes so postings share the stable-id space and
// survive structural updates applied through Sync.
type Index struct {
	ix   *core.Indexes
	tree *btree.Tree

	// grams remembers each value-carrying node's gram set (sorted,
	// deduplicated) so updates can diff without re-reading old text.
	grams     map[uint32][]uint32 // stable node id -> gram hashes
	attrGrams map[uint32][]uint32 // stable attr id -> gram hashes
}

// Build constructs the substring index over the document behind ix.
func Build(ix *core.Indexes) *Index {
	s := &Index{
		ix:        ix,
		grams:     make(map[uint32][]uint32),
		attrGrams: make(map[uint32][]uint32),
	}
	doc := ix.Doc()
	var entries []btree.Entry
	for i := 0; i < doc.NumNodes(); i++ {
		n := xmltree.NodeID(i)
		if doc.Kind(n) != xmltree.Text {
			continue
		}
		stable := ix.StableOf(n)
		gs := gramsOf(doc.ValueBytes(n))
		if len(gs) == 0 {
			continue
		}
		s.grams[stable] = gs
		for _, g := range gs {
			entries = append(entries, btree.Entry{Key: uint64(g), Val: stable << 1})
		}
	}
	for a := 0; a < doc.NumAttrs(); a++ {
		ad := xmltree.AttrID(a)
		stable := ix.AttrStableOf(ad)
		gs := gramsOf(doc.AttrValueBytes(ad))
		if len(gs) == 0 {
			continue
		}
		s.attrGrams[stable] = gs
		for _, g := range gs {
			entries = append(entries, btree.Entry{Key: uint64(g), Val: stable<<1 | 1})
		}
	}
	btree.SortEntries(entries)
	entries = dedupeEntries(entries)
	s.tree = btree.NewFromSorted(entries)
	return s
}

// gramsOf returns the sorted, deduplicated gram hashes of a value.
func gramsOf(b []byte) []uint32 {
	if len(b) < Q {
		return nil
	}
	out := make([]uint32, 0, len(b)-Q+1)
	for i := 0; i+Q <= len(b); i++ {
		out = append(out, gramHash(b[i:i+Q]))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	uniq := out[:1]
	for _, g := range out[1:] {
		if g != uniq[len(uniq)-1] {
			uniq = append(uniq, g)
		}
	}
	return uniq
}

// Contains returns the text and attribute nodes whose value contains
// pattern, verified against the document. Patterns shorter than Q grams
// fall back to a scan.
func (s *Index) Contains(pattern string) []core.Posting {
	if len(pattern) < Q {
		return s.scan(pattern)
	}
	grams := gramsOf([]byte(pattern))
	if len(grams) == 0 {
		return s.scan(pattern)
	}
	// Intersect posting lists, starting from the (likely) rarest gram.
	var lists [][]uint32
	for _, g := range grams {
		var list []uint32
		s.tree.ScanEq(uint64(g), func(v uint32) bool {
			list = append(list, v)
			return true
		})
		if len(list) == 0 {
			return nil
		}
		lists = append(lists, list)
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	cand := lists[0]
	for _, l := range lists[1:] {
		cand = intersect(cand, l)
		if len(cand) == 0 {
			return nil
		}
	}
	// Verify candidates against the document.
	doc := s.ix.Doc()
	var out []core.Posting
	for _, packed := range cand {
		stable, isAttr := packed>>1, packed&1 == 1
		if isAttr {
			a := s.ix.AttrOfStable(stable)
			if a != xmltree.InvalidAttr && containsStr(doc.AttrValue(a), pattern) {
				out = append(out, core.AttrPosting(a))
			}
			continue
		}
		n := s.ix.NodeOfStable(stable)
		if n != xmltree.InvalidNode && containsStr(doc.Value(n), pattern) {
			out = append(out, core.NodePosting(n))
		}
	}
	return out
}

func intersect(a, b []uint32) []uint32 {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// scan is the short-pattern fallback: check every value.
func (s *Index) scan(pattern string) []core.Posting { return Scan(s.ix, pattern) }

// Scan is the index-less substring baseline: it checks every text and
// attribute value in the document.
func Scan(ix *core.Indexes, pattern string) []core.Posting {
	doc := ix.Doc()
	var out []core.Posting
	for i := 0; i < doc.NumNodes(); i++ {
		n := xmltree.NodeID(i)
		if doc.Kind(n) == xmltree.Text && containsStr(doc.Value(n), pattern) {
			out = append(out, core.NodePosting(n))
		}
	}
	for a := 0; a < doc.NumAttrs(); a++ {
		ad := xmltree.AttrID(a)
		if containsStr(doc.AttrValue(ad), pattern) {
			out = append(out, core.AttrPosting(ad))
		}
	}
	return out
}

// SyncText updates the index after a text node's value changed (call
// after core.Indexes.UpdateText). The old gram set is diffed against the
// new one, so maintenance is proportional to the value sizes.
func (s *Index) SyncText(n xmltree.NodeID) {
	doc := s.ix.Doc()
	if doc.Kind(n) != xmltree.Text {
		return
	}
	stable := s.ix.StableOf(n)
	oldGrams := s.grams[stable]
	newGrams := gramsOf(doc.ValueBytes(n))
	s.diff(stable<<1, oldGrams, newGrams)
	if len(newGrams) == 0 {
		delete(s.grams, stable)
	} else {
		s.grams[stable] = newGrams
	}
}

func (s *Index) diff(posting uint32, old, new []uint32) {
	i, j := 0, 0
	for i < len(old) || j < len(new) {
		switch {
		case j >= len(new) || (i < len(old) && old[i] < new[j]):
			s.tree.Delete(uint64(old[i]), posting)
			i++
		case i >= len(old) || new[j] < old[i]:
			s.tree.Insert(uint64(new[j]), posting)
			j++
		default:
			i++
			j++
		}
	}
}

// Len reports the number of (gram, posting) entries.
func (s *Index) Len() int { return s.tree.Len() }

// ScanContains is the index-less baseline for benchmarks.
func (s *Index) ScanContains(pattern string) []core.Posting { return s.scan(pattern) }

func dedupeEntries(entries []btree.Entry) []btree.Entry {
	if len(entries) < 2 {
		return entries
	}
	out := entries[:1]
	for _, e := range entries[1:] {
		if e != out[len(out)-1] {
			out = append(out, e)
		}
	}
	return out
}
