package xmlvi_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	xmlvi "repro"
	"repro/internal/core"
)

// TestDurableLifecycle drives the public durability API end to end:
// configure a WAL, Save (the first checkpoint), mutate through every
// update path including transactions, reopen with OpenDurable, and
// confirm the recovered document is identical and Verify-clean.
func TestDurableLifecycle(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "db.xvi")
	wal := filepath.Join(dir, "db.wal")

	doc, err := xmlvi.ParseWithOptions(
		[]byte(`<inventory count="2"><item price="9.99">widget</item><item price="12.50">gadget</item></inventory>`),
		xmlvi.Options{WAL: wal})
	if err != nil {
		t.Fatal(err)
	}
	// Before the first Save there is no baseline: Checkpoint must refuse.
	if err := doc.Checkpoint(); err != core.ErrNoWAL {
		t.Fatalf("Checkpoint before Save: %v, want core.ErrNoWAL", err)
	}
	if err := doc.Save(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(wal); err != nil {
		t.Fatalf("Save with Options.WAL did not create the log: %v", err)
	}

	// Mutate through every durable path.
	item := doc.Find("item")
	if err := doc.UpdateText(doc.Children(item)[0], "widget-v2"); err != nil {
		t.Fatal(err)
	}
	if err := doc.UpdateAttr(doc.FindAttr(item, "price"), "10.49"); err != nil {
		t.Fatal(err)
	}
	if _, err := doc.InsertXML(doc.Root(), 0, `<item price="3.25">gizmo</item>`); err != nil {
		t.Fatal(err)
	}
	txn := doc.Begin()
	if err := txn.SetText(doc.Children(doc.FindAll("item")[2])[0], "gadget-v2"); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	want, err := doc.XML()
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := xmlvi.OpenDurable(snap, wal)
	if err != nil {
		t.Fatal(err)
	}
	got, err := re.XML()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered document differs:\n got: %s\nwant: %s", got, want)
	}
	if err := re.Verify(); err != nil {
		t.Fatal(err)
	}
	// The recovered document answers indexed queries over replayed data.
	if hits := re.RangeDouble(3, 11); len(hits) != 2 {
		t.Fatalf("RangeDouble(3, 11) after recovery returned %d hits, want 2 (gizmo, widget prices)", len(hits))
	}

	// Checkpoint truncates the log; recovery still agrees.
	if err := re.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() > 64 {
		t.Fatalf("log still %d bytes after checkpoint", st.Size())
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2, err := xmlvi.OpenDurable(snap, wal)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	got2, err := re2.XML()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, want) {
		t.Fatalf("post-checkpoint recovery differs")
	}
}

// TestDurableCrashMidBatch simulates the documented fsync-batching
// tradeoff at the API level: with WALSyncEvery=64, a crash (files
// copied without Close) may lose the unsynced tail but must recover a
// consistent prefix state.
func TestDurableCrashMidBatch(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "db.xvi")
	wal := filepath.Join(dir, "db.wal")
	doc, err := xmlvi.ParseWithOptions([]byte(`<r><a>0</a></r>`),
		xmlvi.Options{WAL: wal, WALSyncEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Save(snap); err != nil {
		t.Fatal(err)
	}
	text := doc.Children(doc.Find("a"))[0]
	if err := doc.UpdateText(text, "first"); err != nil {
		t.Fatal(err)
	}
	if err := doc.SyncWAL(); err != nil { // durability point
		t.Fatal(err)
	}
	if err := doc.UpdateText(text, "second-maybe-lost"); err != nil {
		t.Fatal(err)
	}
	// "Crash": reopen from the files as they are, without Close. The
	// unsynced record is on disk here (no OS crash in a test), so
	// recovery may see either value — but never a corrupt state.
	re, err := xmlvi.OpenDurable(snap, wal)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if err := re.Verify(); err != nil {
		t.Fatal(err)
	}
	got := re.StringValue(re.Children(re.Find("a"))[0])
	if got != "first" && got != "second-maybe-lost" {
		t.Fatalf("recovered %q, want one of the two written values", got)
	}
}
