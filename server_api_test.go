package xmlvi_test

// Black-box tests of the served HTTP/JSON protocol: a loopback xvid
// server over an XMark document and the pathological shape corpus,
// checked against a shadow document queried through the library API.
// The WATCH ordering property — every subscriber sees the exact
// committed version sequence, gap-free and in order, even connecting
// mid-storm from an old token — runs here so the race job covers it.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	xmlvi "repro"
	"repro/internal/datagen"
	"repro/internal/server"
)

// serveDoc exposes one parsed document over a loopback server.
func serveDoc(t *testing.T, name string, doc *xmlvi.Document) *httptest.Server {
	t.Helper()
	srv := server.New(server.Config{})
	if err := srv.AddDocument(name, doc); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return ts
}

// postJSON round-trips one protocol request.
func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode %s: %v", data, err)
		}
	}
	return resp.StatusCode
}

func httpQuery(t *testing.T, ts *httptest.Server, req server.QueryRequest) server.QueryResponse {
	t.Helper()
	var out server.QueryResponse
	if code := postJSON(t, ts.URL+"/v1/query", req, &out); code != http.StatusOK {
		t.Fatalf("query %+v: status %d", req, code)
	}
	return out
}

func httpPatch(t *testing.T, ts *httptest.Server, req server.PatchRequest) server.PatchResponse {
	t.Helper()
	var out server.PatchResponse
	if code := postJSON(t, ts.URL+"/v1/patch", req, &out); code != http.StatusOK {
		t.Fatalf("patch: status %d", code)
	}
	return out
}

// TestServeXMarkBlackBox compares the served protocol against a shadow
// copy of the same XMark document queried through the library API:
// identical counts for the golden queries, agreeing explain verdicts,
// and read-your-writes through the returned version token.
func TestServeXMarkBlackBox(t *testing.T) {
	raw, err := datagen.Generate("xmark1", 0.01, 42)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := xmlvi.ParseWithOptions(raw, xmlvi.Options{StripWhitespace: true})
	if err != nil {
		t.Fatal(err)
	}
	shadow, err := xmlvi.ParseWithOptions(raw, xmlvi.Options{StripWhitespace: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := serveDoc(t, "auction", doc)

	golden := []string{
		`//item[location = "Amsterdam"]`,
		`//open_auction[initial > 4950]`,
		`//quantity[. = 3]`,
		`//item[quantity = 7]`,
	}
	for _, q := range golden {
		want, err := shadow.Query(q)
		if err != nil {
			t.Fatalf("shadow %q: %v", q, err)
		}
		got := httpQuery(t, ts, server.QueryRequest{Query: q, Limit: len(want) + 1})
		if got.Count != len(want) {
			t.Errorf("served %q count = %d, library = %d", q, got.Count, len(want))
		}

		_, plan, err := shadow.Explain(q)
		if err != nil {
			t.Fatal(err)
		}
		ex := httpQuery(t, ts, server.QueryRequest{Query: q, Explain: true})
		if ex.Explain == nil || ex.Explain.UsesIndex != plan.UsesIndex() {
			t.Errorf("served explain of %q disagrees with library: %+v vs uses_index=%v",
				q, ex.Explain, plan.UsesIndex())
		}
	}

	// Patch through the wire, mirror on the shadow, and re-compare at the
	// committed token: the served write is immediately readable.
	leaves := httpQuery(t, ts, server.QueryRequest{Query: `//quantity[. = 3]`, Limit: 1})
	if leaves.Count == 0 {
		t.Fatal("no quantity=3 leaves in generated XMark")
	}
	res := httpPatch(t, ts, server.PatchRequest{Ops: []server.PatchOp{
		{Op: "set_text", Node: &leaves.Results[0].Node, Value: "424242"},
	}})
	after := httpQuery(t, ts, server.QueryRequest{Query: `//quantity[. = 424242]`, MinVersion: res.Version})
	if after.Count != 1 {
		t.Fatalf("read-your-writes: count = %d at version %v", after.Count, res.Version)
	}
	if after.Version < res.Version {
		t.Fatalf("query pinned version %v below patch token %v", after.Version, res.Version)
	}
}

// TestServeShapeCorpus serves the pathological document shapes and
// checks the protocol agrees with the library on each.
func TestServeShapeCorpus(t *testing.T) {
	var giant strings.Builder
	giant.WriteString("<r>")
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&giant, "<d%d>", i%7)
	}
	giant.WriteString("42.5")
	for i := 199; i >= 0; i-- {
		fmt.Fprintf(&giant, "</d%d>", i%7)
	}
	giant.WriteString("</r>")

	var deep strings.Builder
	deep.WriteString("<r>")
	for i := 0; i < 120; i++ {
		fmt.Fprintf(&deep, "<lvl><n>%d.5</n>", i)
	}
	deep.WriteString("bottom")
	deep.WriteString(strings.Repeat("</lvl>", 120))
	deep.WriteString("</r>")

	var attrs strings.Builder
	attrs.WriteString("<r>")
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&attrs, `<e a="%d" b="%d.%02d"/>`, i, i, i%100)
	}
	attrs.WriteString("</r>")

	cases := []struct {
		name  string
		xml   string
		query string
	}{
		{"giant-subtree", giant.String(), `//d1[. = 42.5]`},
		{"deep-chain", deep.String(), `//n[. = 7.5]`},
		{"all-attribute", attrs.String(), `//e[@a = 123]`},
		{"empty", `<r/>`, `//missing[. = 1]`},
		{"mixed-content", `<r>7<w><v>5</v></w>8<!--note--><?pi data?></r>`, `//v[. = 5]`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			doc, err := xmlvi.ParseString(tc.xml)
			if err != nil {
				t.Fatal(err)
			}
			shadow, err := xmlvi.ParseString(tc.xml)
			if err != nil {
				t.Fatal(err)
			}
			ts := serveDoc(t, tc.name, doc)
			want, err := shadow.Query(tc.query)
			if err != nil {
				t.Fatal(err)
			}
			got := httpQuery(t, ts, server.QueryRequest{Query: tc.query})
			if got.Count != len(want) {
				t.Fatalf("served %q count = %d, library = %d", tc.query, got.Count, len(want))
			}
		})
	}
}

// --- WATCH ordering under a concurrent update storm ---

// watchVersions subscribes at from and returns the first n change
// versions in arrival order (failing the test on stream errors).
func watchVersions(ctx context.Context, t *testing.T, ts *httptest.Server, from uint64, n int) []uint64 {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/watch?from=%d", ts.URL, from), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch connect: status %d", resp.StatusCode)
	}
	var got []uint64
	sc := bufio.NewScanner(resp.Body)
	event := ""
	for len(got) < n && sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "change":
				var ev server.WatchEvent
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					t.Errorf("bad change payload %q: %v", data, err)
					return got
				}
				got = append(got, uint64(ev.Version))
			case "error":
				t.Errorf("stream error after %d/%d: %s", len(got), n, data)
				return got
			}
		}
	}
	return got
}

// TestWatchOrderingUnderStorm runs 8 watchers against a patch storm and
// asserts every one of them observes the exact committed version
// sequence — no gaps, no duplicates, no torn batches — including
// watchers that connect mid-storm and resume from the oldest token.
func TestWatchOrderingUnderStorm(t *testing.T) {
	doc, err := xmlvi.ParseString(`<site>
		<item id="i1"><location>Amsterdam</location><quantity>3</quantity></item>
		<item id="i2"><location>Oslo</location><quantity>7</quantity></item>
	</site>`)
	if err != nil {
		t.Fatal(err)
	}
	ts := serveDoc(t, "site", doc)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const (
		earlyWatchers = 8
		lateWatchers  = 4
		commits       = 60
	)
	v0 := doc.Version()
	leaf := httpQuery(t, ts, server.QueryRequest{Query: `//quantity[. = 3]`}).Results[0].Node

	var wg sync.WaitGroup
	sequences := make([][]uint64, earlyWatchers+lateWatchers)
	for i := 0; i < earlyWatchers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sequences[i] = watchVersions(ctx, t, ts, v0, commits)
		}(i)
	}

	// The storm: every patch is one commit; versions advance by exactly
	// one per patch, whatever the interleaving with watcher connects.
	storm := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < commits; i++ {
			httpPatch(t, ts, server.PatchRequest{Ops: []server.PatchOp{
				{Op: "set_text", Node: &leaf, Value: fmt.Sprint(1000 + i)},
			}})
			if i == commits/3 {
				close(storm) // let the late watchers connect mid-storm
			}
		}
	}()

	<-storm
	for i := 0; i < lateWatchers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Resuming from the pre-storm token mid-storm must replay the
			// missed prefix before going live — same exact sequence.
			sequences[earlyWatchers+i] = watchVersions(ctx, t, ts, v0, commits)
		}(i)
	}
	wg.Wait()

	for i, seq := range sequences {
		if len(seq) != commits {
			t.Fatalf("watcher %d saw %d/%d changes", i, len(seq), commits)
		}
		for j, v := range seq {
			if v != v0+uint64(j)+1 {
				t.Fatalf("watcher %d change[%d] = version %d, want %d (gap or duplicate)",
					i, j, v, v0+uint64(j)+1)
			}
		}
	}
	if got := doc.Version(); got != v0+commits {
		t.Fatalf("final version = %d, want %d (each patch exactly one commit)", got, v0+commits)
	}
}
