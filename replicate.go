package xmlvi

// Log shipping and point-in-time opens: the public surface follower
// replicas (internal/replica, cmd/xvid -follow) build on.
//
// A Change (see watch.go) carries the canonical write-ahead-log payload
// of one commit. ApplyChange applies such a record at exactly the
// matching version boundary, so a follower that feeds a leader's
// committed-change stream — a WATCH subscription, or a tailed WAL file —
// through ApplyChange reconstructs every published leader state in
// order, byte for byte. OpenAt is the offline form: replay the durable
// log's tail up to a cut version, yielding the state as of that commit.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/txn"
)

// ErrVersionGap is returned by ApplyChange when the change does not
// extend the document's current version by exactly one. The applier has
// missed or duplicated a record and must resynchronise (re-subscribe
// from its current version, or re-seed) instead of applying out of
// order.
var ErrVersionGap = core.ErrVersionGap

// ErrVersionBeforeSnapshot is returned by OpenAt for versions older than
// the snapshot: the records that produced them were compacted away by a
// checkpoint.
var ErrVersionBeforeSnapshot = core.ErrVersionBeforeSnapshot

// ErrVersionInFuture is returned by OpenAt for versions newer than the
// durable log's last record.
var ErrVersionInFuture = core.ErrVersionInFuture

// recordKindOf maps a public ChangeKind back onto its WAL record kind.
func recordKindOf(kind ChangeKind) (storage.RecordKind, error) {
	switch kind {
	case ChangeTexts:
		return storage.RecTextBatch, nil
	case ChangeAttr:
		return storage.RecAttrUpdate, nil
	case ChangeDelete:
		return storage.RecDelete, nil
	case ChangeInsert:
		return storage.RecInsert, nil
	default:
		return 0, fmt.Errorf("xmlvi: unknown change kind %d", kind)
	}
}

// ApplyChange applies one shipped commit record to the document at
// exactly the matching version boundary: c.Version must be Version()+1,
// or the apply fails with ErrVersionGap and no state changes. The
// payload is validated, decoded, and applied through the same
// clone-apply-publish cycle as a live mutation — readers keep their
// pinned snapshots, the new version appears with one pointer swap, and
// the commit observer (OnCommit) sees it like any other commit, so a
// follower re-publishes the leader's stream to its own subscribers.
//
// On a durable document (Options.WAL after the first Save, or
// OpenDurable) the record is appended to the document's own write-ahead
// log before it is published: a follower's local snapshot/log pair then
// recovers — after a crash mid-apply — to exactly the prefix of the
// leader's history it durably applied, and resuming the subscription
// from Version() continues with no duplicate or missing record.
//
// ApplyChange must not race the document's own mutating methods: a
// replica is either a follower (all writes arrive as shipped changes) or
// a leader (all writes are local), never both.
func (d *Document) ApplyChange(c Change) error {
	kind, err := recordKindOf(c.Kind)
	if err != nil {
		return err
	}
	return d.ix.ApplyShippedRecord(c.Version, storage.Record{Kind: kind, Payload: c.Payload})
}

// OpenAt opens the state of a durable document as of an exact version
// ("time travel"): the snapshot is loaded and the write-ahead log's tail
// is replayed only up to the commit that published version. The result
// is byte-identical (Pinned.Save) to a document that stopped committing
// at that version.
//
// The returned document is a detached in-memory replica of one
// historical state: no log is attached, so mutating it affects neither
// the snapshot nor the log it was opened from. version must lie in the
// durable window — at or after the snapshot's version
// (ErrVersionBeforeSnapshot; earlier states were compacted away by a
// checkpoint) and at or before the last durably logged commit
// (ErrVersionInFuture). Opening is safe while a live writer appends to
// the same log.
func OpenAt(snapshotPath, walPath string, version uint64) (*Document, error) {
	ix, err := core.OpenAt(snapshotPath, walPath, version)
	if err != nil {
		return nil, err
	}
	return &Document{ix: ix, mgr: txn.NewManager(ix)}, nil
}

// LoadWithOptions is Load with explicit options. Index selection is
// determined by the snapshot; the planner mode and the WAL fields are
// consulted, so a loaded document can be made durable: with Options.WAL
// set, the first Save writes the recovery baseline and attaches the log,
// exactly as for a parsed document. This is how a follower turns a
// fetched seed snapshot into its own durable snapshot/log pair.
func LoadWithOptions(path string, opts Options) (*Document, error) {
	ix, err := core.Load(path)
	if err != nil {
		return nil, err
	}
	return &Document{ix: ix, mgr: txn.NewManager(ix), planner: opts.Planner,
		walPath: opts.WAL, walSyncEvery: opts.WALSyncEvery}, nil
}

// Save writes the pinned version to a snapshot file at path — the plain
// (generation-0) snapshot encoding, exactly the bytes Document.Save
// produces for this state on a log-less document. Because a Pinned is
// immutable, Save serialises precisely the pinned version even while
// later commits keep publishing; two documents at the same version with
// equal state produce equal files, which is what the replication
// equivalence tests assert.
func (p *Pinned) Save(path string) error { return p.snap.Save(path) }
