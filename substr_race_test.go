package xmlvi_test

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	xmlvi "repro"
)

// TestContainsDuringUpdateStorm is the regression test for the raceful
// substring index: before the index moved into the MVCC snapshot,
// Document.Contains read a document-level mutable q-gram map that
// UpdateText rewrote in place, so concurrent readers raced the writer
// (and could observe half-synced state). Now every reader pins one
// published version; run this under -race — any sharing between a
// commit draft and a published gram tree is a hard error.
func TestContainsDuringUpdateStorm(t *testing.T) {
	const readers = 8
	var b strings.Builder
	b.WriteString(`<r>`)
	for i := 0; i < 30; i++ {
		fmt.Fprintf(&b, `<v note="tag%d">needle base%d</v>`, i, i)
	}
	b.WriteString(`</r>`)
	d := mustParse(t, b.String())
	d.EnableSubstringIndex()

	var stop atomic.Bool
	var reads atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				// Every hit must carry its pattern: Contains pins one
				// version and verifies against that version's values.
				for _, hit := range d.Contains("needle") {
					if !strings.Contains(hit.Value(), "needle") {
						errc <- fmt.Errorf("Contains hit %q does not contain the pattern", hit.Value())
						return
					}
				}
				for _, hit := range d.StartsWith("tag") {
					if !strings.HasPrefix(hit.Value(), "tag") {
						errc <- fmt.Errorf("StartsWith hit %q does not start with the pattern", hit.Value())
						return
					}
				}
				reads.Add(1)
			}
		}()
	}

	const (
		minCommits = 100
		maxCommits = 20000
	)
	for g := 0; g < minCommits || (reads.Load() < readers && g < maxCommits); g++ {
		switch g % 4 {
		case 0, 2:
			var ups []xmlvi.TextUpdate
			for i, v := range d.FindAll("v") {
				if i == 6 {
					break
				}
				ups = append(ups, xmlvi.TextUpdate{Node: d.Children(v)[0], Value: fmt.Sprintf("needle gen%d-%d", g, i)})
			}
			if err := d.UpdateTexts(ups); err != nil {
				t.Fatal(err)
			}
		case 1:
			if _, err := d.InsertXML(d.Find("r"), 0, fmt.Sprintf(`<v note="tag-ins%d">needle ins%d</v>`, g, g)); err != nil {
				t.Fatal(err)
			}
		case 3:
			if err := d.Delete(d.Find("v")); err != nil {
				t.Fatal(err)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if reads.Load() == 0 {
		t.Fatal("readers made no progress during the storm")
	}
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestContainsQueryPredicateAPI: contains()/starts-with() answer
// through the public query API (and through the planner once the index
// is enabled), identically either way.
func TestContainsQueryPredicateAPI(t *testing.T) {
	d := mustParse(t, `<site><person id="person1"><name>Arthur Dent</name></person>`+
		`<person id="person2"><name>Ford Prefect</name></person></site>`)
	query := `//person[contains(name/text(), "rthu")]`
	scan, err := d.QueryScan(query)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan) != 1 {
		t.Fatalf("scan = %d hits", len(scan))
	}
	d.EnableSubstringIndex()
	// A two-person document makes Auto prefer the scan on cost alone;
	// force the index drive to pin the access path itself.
	mode, err := xmlvi.ParsePlannerMode("index")
	if err != nil {
		t.Fatal(err)
	}
	d.SetPlanner(mode)
	res, pl, err := d.Explain(query)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Node != scan[0].Node {
		t.Fatalf("planned = %v, scan = %v", res, scan)
	}
	if !strings.Contains(pl.String(), "substr") {
		t.Errorf("plan does not drive the substring index:\n%s", pl)
	}
	// starts-with over an attribute leaf.
	res, pl, err = d.Explain(`//person[starts-with(@id, "person2")]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("starts-with = %d hits", len(res))
	}
	if !strings.Contains(pl.String(), "substr") {
		t.Errorf("starts-with plan does not drive the substring index:\n%s", pl)
	}
}
