package xmlvi_test

import (
	"testing"
)

func TestContainsWithAndWithoutIndex(t *testing.T) {
	d := mustParse(t, `<r><a>the quick brown fox</a><b note="lazy dogs everywhere">jumps over</b></r>`)
	// Without the index: scan path.
	scan := d.Contains("quick brown")
	if len(scan) != 1 {
		t.Fatalf("scan Contains = %d", len(scan))
	}
	// Enable the q-gram index and compare.
	d.EnableSubstringIndex()
	idx := d.Contains("quick brown")
	if len(idx) != len(scan) || idx[0].Node != scan[0].Node {
		t.Fatalf("indexed Contains differs: %v vs %v", idx, scan)
	}
	// Attribute values participate.
	if hits := d.Contains("lazy dogs"); len(hits) != 1 || !hits[0].IsAttr {
		t.Fatalf("attr Contains = %v", hits)
	}
	if hits := d.Contains("absent needle"); len(hits) != 0 {
		t.Fatalf("phantom hits: %v", hits)
	}
}

func TestContainsFollowsUpdates(t *testing.T) {
	d := mustParse(t, `<r><a>original content</a></r>`)
	d.EnableSubstringIndex()
	txt := d.Children(d.Find("a"))[0]
	if err := d.UpdateText(txt, "replacement content"); err != nil {
		t.Fatal(err)
	}
	if hits := d.Contains("original"); len(hits) != 0 {
		t.Error("stale substring hit after update")
	}
	if hits := d.Contains("replacement"); len(hits) != 1 {
		t.Error("new substring not found after update")
	}
	// Structural updates rebuild the substring index.
	if _, err := d.InsertXML(d.Find("a"), 1, `<extra>inserted words</extra>`); err != nil {
		t.Fatal(err)
	}
	if hits := d.Contains("inserted words"); len(hits) != 1 {
		t.Error("substring index missed inserted content")
	}
	if err := d.Delete(d.Find("extra")); err != nil {
		t.Fatal(err)
	}
	if hits := d.Contains("inserted words"); len(hits) != 0 {
		t.Error("substring index kept deleted content")
	}
}

func BenchmarkContainsAPI(b *testing.B) {
	d := mustParse(b, wideXML(2000))
	d.EnableSubstringIndex()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(d.Contains("needle-77")) == 0 {
			b.Fatal("needle missing")
		}
	}
}

func wideXML(n int) string {
	out := "<r>"
	for i := 0; i < n; i++ {
		out += "<x>needle-" + itoa(i) + " filler words</x>"
	}
	return out + "</r>"
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}
