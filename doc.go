// Package xmlvi is a Go implementation of the generic, updatable XML
// value indices of Sidirourgos & Boncz, "Generic and updatable XML value
// indices covering equality and range lookups" (EDBT 2009 / CWI report
// INS-E0802).
//
// Unlike conventional XML value indices, which require an administrator
// to declare indexed paths and types up front, these indices cover an
// entire document — every element, attribute, and text node — and respect
// the XQuery data model: the string value of an element is the
// concatenation of its descendant text nodes, so mixed content such as
//
//	<age><decades>4</decades>2<years/></age>
//
// correctly equals 42 in both string and numeric comparisons.
//
// Three indices are maintained together:
//
//   - a string equi-index built on a 32-bit hash H with an associative
//     combination function C (H(a·b) = C(H(a), H(b))), so ancestor hashes
//     are maintained on update without re-reading any text;
//   - an xs:double range index built on a finite state machine accepting
//     fragments of the double lexical space, with a state combination
//     table (SCT) combining adjacent fragments;
//   - an xs:dateTime range index using the same machinery.
//
// # Quick start
//
//	doc, err := xmlvi.Parse([]byte(`<person><age>4</age>2</person>`))
//	if err != nil { ... }
//	hits, err := doc.Query(`//person[. = 42]`)
//
// Documents are updatable in place (text updates, subtree deletion and
// insertion) with index maintenance costs proportional to the update, not
// the document; they persist to a checksummed snapshot file and support
// concurrent commutative transactions (Section 5.1 of the paper).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of the paper's evaluation.
package xmlvi
