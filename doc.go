// Package xmlvi is a Go implementation of the generic, updatable XML
// value indices of Sidirourgos & Boncz, "Generic and updatable XML value
// indices covering equality and range lookups" (EDBT 2009 / CWI report
// INS-E0802).
//
// Unlike conventional XML value indices, which require an administrator
// to declare indexed paths and types up front, these indices cover an
// entire document — every element, attribute, and text node — and respect
// the XQuery data model: the string value of an element is the
// concatenation of its descendant text nodes, so mixed content such as
//
//	<age><decades>4</decades>2<years/></age>
//
// correctly equals 42 in both string and numeric comparisons.
//
// # Index inventory
//
// Two kinds of index are maintained together:
//
//   - a string equi-index built on a 32-bit hash H with an associative
//     combination function C (H(a·b) = C(H(a), H(b))), so ancestor hashes
//     are maintained on update without re-reading any text;
//   - one typed range index per entry of the type registry
//     (internal/core.RegisterType). Each registered type contributes a
//     finite state machine accepting fragments of its lexical space —
//     combined across adjacent fragments through a state combination
//     table (SCT) — and an order-preserving key encoding for its value
//     B+tree. The built-in registrations are xs:double, xs:dateTime, and
//     xs:date.
//
// The paper's Section 4 claims the FSM/monoid machinery generalises to
// any ordered XML type; the registry is that claim made operational. The
// build pass, incremental update algorithm, range lookup, snapshot
// persistence, verification, and statistics all iterate the registry —
// none of them name a concrete type. The xs:date index is the living
// proof: it is wired in by a single RegisterType call with no new control
// flow anywhere.
//
// # Adding a new typed index
//
// To index another ordered type (xs:integer, xs:decimal, xs:boolean,
// xs:time, …):
//
//  1. Define the type's base DFA over byte classes and compile it into an
//     fsm.Machine (see internal/fsm/date.go for the complete model — the
//     monoid elements, SCT, and fragment algebra are derived
//     mechanically from the DFA).
//
//  2. Write a value extractor from a castable fragment's digit runs and
//     punctuation (see fsm.DateValue), and wrap it in a key encoder onto
//     a uint64 that preserves the type's order (btree.EncodeInt64 /
//     EncodeFloat64 cover the common domains).
//
//  3. Register the pieces under a fresh, never-reused TypeID:
//
//     core.RegisterType(core.TypeSpec{
//     ID:      42,                  // stable: it names snapshot sections
//     Name:    "integer",
//     Machine: fsm.Integer(),
//     Encode:  encodeInteger,
//     })
//
//  4. Enable it at build time via Options.Types (or a sugar boolean, as
//     the built-ins do). Build, UpdateText(s), UpdateAttr, Delete,
//     InsertXML, Save, Load, Verify, and Stats pick the type up
//     unchanged; RangeTyped serves lookups by TypeID.
//
// # Quick start
//
//	doc, err := xmlvi.Parse([]byte(`<person><age>4</age>2</person>`))
//	if err != nil { ... }
//	hits, err := doc.Query(`//person[. = 42]`)
//
// Range predicates use the typed indexes: numeric comparisons go to the
// xs:double index, and date comparisons — written with an explicit
// xs:date literal, as in
//
//	//person[birthday >= xs:date("1970-01-01")]
//
// — go to the xs:date index.
//
// Documents are updatable in place (text updates, subtree deletion and
// insertion) with index maintenance costs proportional to the update, not
// the document; they persist to a checksummed snapshot file (typed
// indexes in versioned per-type sections keyed by stable type ID) and
// support concurrent commutative transactions (Section 5.1 of the paper).
//
// # Query planning
//
// Query runs through an explicit three-stage pipeline (internal/plan):
// the parsed path is the logical plan; the planner turns it into a
// physical plan by enumerating one access path per indexable condition
// of the final step — hash equality on the string equi-index, a B+tree
// range on the matching typed index (every type registered with
// core.RegisterType advertises its range path this way: an indexable
// literal plus an order-preserving Encode is all a type needs), and a
// document scan as the universal fallback — and the executor drives the
// chosen tree. Plan IR: result ← verify ← (intersect ←)? access paths.
//
// Costing uses a per-index statistics layer maintained in core: the
// entry total, the distinct-key count, and a small equi-depth histogram
// over each B+tree's key space. Histogram bucket counts are adjusted
// exactly on every insert/delete; bucket bounds and distinct counts are
// refreshed once accumulated churn passes a quarter of the tree, and
// the whole layer is persisted in the snapshot's "stats" section
// (rebuilt from the trees when loading an older snapshot). Equality
// estimates are average cluster size capped by the covering bucket;
// range estimates interpolate linearly inside boundary buckets.
//
// The planner picks the access path with the lowest estimated
// cardinality as the driver, then greedily adds further selective paths
// as intersection inputs while streaming them (through core's posting
// iterators) into a context bitmap costs less than the per-context
// verification it saves. Every candidate surviving the bitmap is
// verified against the path structure and the full predicate list, so
// planned execution is result-identical to the scan evaluator — the
// equivalence property tests and FuzzQueryPlanned pin exactly that.
//
// Explain returns the executed plan tree; its String renders, per
// operator, the estimated cardinality next to the actual one:
//
//	result //person[income > 95000 and birthday < xs:date("1960-01-01")]  (est 2.4, actual 2)
//	└─ verify structure + remaining predicates  (est 2.4, actual 2)
//	   └─ intersect bitmap over candidate contexts  (est 2.4, actual 2)
//	      ├─ range(double) income > [0x..., 0x...]  [driver]  (est 3.0, actual 3)
//	      └─ range(date) birthday < [0x0, 0x...]  (est 2.0, actual 2)
//
// Options.Planner (and Document.SetPlanner, for loaded snapshots)
// selects the strategy: PlannerAuto (cost-based, the default),
// PlannerLegacy (the pre-planner first-indexable-condition heuristic),
// PlannerForceScan, and PlannerForceIndex — the last two are the arms
// of the scan-vs-index selectivity crossover ablation (xvibench -exp
// a6; the conjunctive planner-vs-legacy comparison is -exp a7).
// Unsupported path shapes (attribute steps in the middle of a path)
// fail with ErrUnsupportedPath instead of silently returning nothing.
//
// # Substring search
//
// EnableSubstringIndex adds a positional q-gram index (q = 3 byte
// grams) over every text node and attribute value. It answers
// Document.Contains and Document.StartsWith, and it backs the XPath
// dialect's text predicates
//
//	//person[contains(emailaddress/text(), "mailto:w")]
//	//person[starts-with(@id, "person1")]
//
// which the planner costs as a substring access path — candidate
// postings from gram posting-list intersection, estimated through the
// same statistics layer as the value indexes, every candidate verified
// against the actual value — against the document scan. Only
// text()/attribute leaf operands are indexable: an element operand
// compares against the concatenated string value, which a single
// node's grams cannot witness, so those (and patterns shorter than q,
// and documents without the index) fall back to the scan, and the
// EXPLAIN plan carries a note saying which fallback fired and why.
// Results are identical either way.
//
// The index lives inside the MVCC Snapshot like every other index:
// each commit maintains it copy-on-write, Contains pins one published
// version, and the index rides snapshot persistence — Save/Load,
// checkpoints, crash recovery, point-in-time OpenAt, and follower
// replication all preserve it. Enabling does not publish a new version
// (followers apply shipped records at strict version boundaries), and
// is idempotent. xviquery -substring and xvid -substring enable it at
// the tools layer; xvibench -exp a8 is the text-predicate experiment.
//
// # Memory layout
//
// Reader-hot state is compressed without changing any observable
// behaviour: B+tree leaves store their sorted (key, posting) entries
// as frame-of-reference delta varints (2-6 bytes per entry instead of
// 16; reads stream-decode, single-entry mutations splice bytes and
// re-encode at most the successor entry); text and attribute values
// are hash-consed into a shared heap on build and update, with dead
// bytes tracked and the heap compacted automatically on the private
// draft of a commit that crosses the dead-bytes threshold; substring
// candidate postings intersect as delta-encoded byte strings. All of
// it lives behind the same MVCC snapshots — readers stay lock-free
// and pinned versions stay bit-stable — and persisted tree sections
// carry a format version, so older snapshots load transparently and
// unknown future formats fail with a descriptive error. Save rewrites
// the name dictionary to only the names live nodes still reference.
//
// Document.MemStats reports the footprint per component together with
// the analytic unpacked equivalent of the same state; bytes per node
// is the tracked layout metric, surfaced through GET /v1/stats (mem),
// the xvibench a6/a7/a8 tables (B/node), and BenchmarkMemFootprint,
// whose bytes_per_node lands in CI's bench summary with regression
// flagging against the committed baseline.
//
// # Durability
//
// By default persistence is snapshot-only: updates live in memory until
// the next Save, and a crash loses everything since. Configuring a
// write-ahead log turns the document into a durable store without
// paying a snapshot rewrite per update:
//
//	doc, _ := xmlvi.ParseWithOptions(xml, xmlvi.Options{
//		WAL:          "db.wal",
//		WALSyncEvery: 64, // fsync once per 64 records; 1 = every record
//	})
//	doc.Save("db.xvi")       // first checkpoint: snapshot + empty log
//	doc.UpdateText(n, "new") // logged before it is applied
//	doc.Checkpoint()         // rewrite snapshot, truncate log
//
// After a crash, OpenDurable("db.xvi", "db.wal") loads the snapshot,
// replays the log tail through the same incremental update algorithm,
// verifies the recovered leaf hashes and FSM states, and resumes
// logging. The log is CRC-framed per record, so a torn tail is detected
// and truncated: recovery always yields the snapshot plus a prefix of
// the durably logged operations — never a half-applied record.
// Checkpoints are atomic (snapshot written to a temp file and renamed)
// and stamp both files with a generation number, so a crash at any
// point of the checkpoint itself leaves a recoverable pair; a stale log
// is detected and discarded rather than double-applied. Transaction
// commits log their whole write set as one record, making the commit
// itself the unit of recovery. WALSyncEvery > 1 batches fsyncs — the
// dominant cost of a durable update — trading the unsynced tail of a
// batch (bounded by the batch size) for an order of magnitude in update
// throughput; SyncWAL forces a durability point explicitly. See the
// README's durability section for the log format and the recovery
// contract, and internal/storage's crash-injection suite for the
// property that pins it.
//
// # Parallel index construction
//
// Options.Parallelism bounds the worker goroutines index construction
// uses: 0 means runtime.GOMAXPROCS(0) (the default), 1 forces the serial
// reference build — the paper's Figure 7 loop, kept as the oracle the
// parallel path is property-tested against. Both of Figure 7's
// ingredients are associative (the hash combination function C and the
// SCT's monoid composition), so the depth-first fold splits at subtree
// boundaries without changing any result:
//
//   - the document is carved into contiguous runs of complete subtrees
//     ("shards") hanging off a small spine (the document node plus any
//     element too large to hand to one worker whole);
//   - a worker pool runs the Figure 7 pass over each shard with private
//     scratch buffers, which are merged at shard boundaries afterwards;
//   - the spine is folded serially, children first, from the children's
//     stored fields — exactly how the Figure 8 update algorithm refolds
//     interior nodes — preserving SCT early-reject semantics bit for
//     bit;
//   - each enabled index's B+tree bulk-loads on its own goroutine (the
//     trees are independent after collection), with the entry sort
//     itself fanned out.
//
// Every Parallelism setting produces identical indexes, down to snapshot
// bytes; internal/core's equivalence property tests pin this per
// registered type, on the generated XMark corpus and on pathological
// shapes (one giant subtree, all-attribute documents, the empty
// document). Because the paths shard per registered TypeSpec, any type
// added through the registry is parallelised with no further work.
//
// # Concurrency
//
// The index layer is multi-versioned: the document, every index column,
// and every B+tree live in an immutable Snapshot, and a commit never
// mutates the published version. Instead each write — text batch,
// attribute update, Delete, InsertXML, WAL replay — builds a draft by
// copy-on-write cloning of exactly the state it changes, applies the
// operation to the draft, and publishes it with one atomic pointer
// swap. Version numbers increase by one per commit; a failed commit
// publishes nothing (the draft is discarded whole, so batches are
// atomic: a reader sees all of a batch or none of it).
//
// Readers therefore never block and never lock. Every read entry point
// (LookupString, LookupDouble, the Range methods, Query, tree
// navigation, Contains) pins the current version with one atomic load
// and runs entirely against it; a query plans, executes, and binds its
// results against one pinned version even while writers storm. A
// pinned Snapshot is immutable forever — Go's garbage collector is the
// epoch-reclamation scheme: a version's memory is reclaimed when the
// last reader drops it, with no reader registration or grace periods.
//
// Writers are serialized by a single internal commit mutex; for
// multi-statement isolation and commutativity checking, coordinate
// writes through the transaction layer (Begin/Txn, whose commit section
// funnels every write through the same commit path). The type registry
// follows the same pattern — RegisterType copies and atomically swaps
// an immutable table — so lookups during registration are lock-free
// too.
//
// The network server (internal/server, cmd/xvid) is a direct projection
// of this version-publish protocol onto a wire protocol. Version
// numbers double as commit-sequence tokens — they are persisted in
// snapshots, so a token survives Save/Load, checkpoints, and crash
// recovery — and every served query runs on one Pin'd version. OnCommit
// observes each publication synchronously under the commit mutex, after
// the atomic swap, which is why the served WATCH stream carries every
// committed change exactly once, in version order, with no gaps: the
// stream is the write-ahead log viewed live (the hook payload is the
// canonical WAL record encoding), and RecoveredChanges replays the
// recovered log tail into it after a restart so subscribers resume
// across crashes.
//
// Replication (internal/replica, xvid -follow) is the same protocol run
// in reverse: a follower subscribes to the leader's WATCH stream with
// shipped payloads and feeds each record to ApplyChange, which replays
// it through the identical copy-on-write commit path a local write
// takes — draft, apply, append to the follower's own log, one atomic
// publish — but only at the exactly matching version boundary (record
// N+1 on top of version N; anything else is a rejected gap, never a
// partial apply). Because version numbers, record encodings, and the
// apply algorithm are all shared, the follower's published version N is
// byte-identical to the leader's version N, its readers get the same
// lock-free pinned-snapshot guarantees, and a leader version token
// passed as a min_version bound on a follower read yields
// read-your-writes across the pair. The same machinery opens history:
// OpenAt(snapshot, wal, n) replays a durable pair's log tail to any
// retained version and hands back that state as a detached document.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of the paper's evaluation.
package xmlvi
