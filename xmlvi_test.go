package xmlvi_test

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	xmlvi "repro"
)

const personXML = `<person><name><first>Arthur</first><family>Dent</family></name><birthday>1966-09-26</birthday><age><decades>4</decades>2<years/></age><weight><kilos>78</kilos>.<grams>230</grams></weight></person>`

func mustParse(t testing.TB, xml string) *xmlvi.Document {
	t.Helper()
	d, err := xmlvi.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestQuickstartFlow(t *testing.T) {
	d := mustParse(t, personXML)
	// Equality on strings.
	hits := d.LookupString("Arthur")
	if len(hits) == 0 {
		t.Fatal("Arthur not found")
	}
	// The paper's mixed-content semantics: age = 42 via <decades>4 + 2.
	ages, err := d.Query(`//age[. = 42]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ages) != 1 || ages[0].Name() != "age" {
		t.Fatalf("age query = %v", ages)
	}
	// Range lookup catches the combined 78.230 weight.
	ws := d.RangeDouble(78, 79)
	foundWeight := false
	for _, r := range ws {
		if r.Name() == "weight" {
			foundWeight = true
		}
	}
	if !foundWeight {
		t.Error("weight not in range result")
	}
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestResultAccessors(t *testing.T) {
	d := mustParse(t, `<items><item id="i1"><price>9.99</price></item></items>`)
	hits := d.LookupString("i1")
	if len(hits) != 1 || !hits[0].IsAttr {
		t.Fatalf("hits = %v", hits)
	}
	r := hits[0]
	if r.Name() != "id" || r.Value() != "i1" {
		t.Errorf("attr result = %s=%s", r.Name(), r.Value())
	}
	if got := r.Path(); got != "/items/item/@id" {
		t.Errorf("Path = %q", got)
	}
	prices, _ := d.Query(`//price[. = 9.99]`)
	if len(prices) != 1 || prices[0].Path() != "/items/item/price" {
		t.Errorf("price path = %v", prices)
	}
	texts, _ := d.Query(`//price/text()`)
	if len(texts) != 1 || texts[0].Path() != "/items/item/price/text()" {
		t.Errorf("text path = %v", texts)
	}
}

func TestUpdateFlow(t *testing.T) {
	d := mustParse(t, personXML)
	family := d.Find("family")
	txt := d.Children(family)[0]
	if err := d.UpdateText(txt, "Prefect"); err != nil {
		t.Fatal(err)
	}
	if len(d.LookupString("ArthurPrefect")) == 0 {
		t.Error("combined value not updated")
	}
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAndInsert(t *testing.T) {
	d := mustParse(t, personXML)
	if err := d.Delete(d.Find("age")); err != nil {
		t.Fatal(err)
	}
	if hits, _ := d.Query(`//age[. = 42]`); len(hits) != 0 {
		t.Error("deleted age still queryable")
	}
	person := d.Find("person")
	at, err := d.InsertXML(person, 0, `<email kind="home">arthur@example.org</email><height>1.85</height>`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name(at) != "email" {
		t.Errorf("first inserted = %q", d.Name(at))
	}
	if hits := d.LookupDouble(1.85); len(hits) == 0 {
		t.Error("inserted height not indexed")
	}
	if hits := d.LookupString("arthur@example.org"); len(hits) == 0 {
		t.Error("inserted email not indexed")
	}
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.InsertXML(person, 0, ``); err == nil {
		t.Error("empty fragment must fail")
	}
	if _, err := d.InsertXML(person, 0, `<unclosed>`); err == nil {
		t.Error("bad fragment must fail")
	}
}

func TestDateTimeRange(t *testing.T) {
	d := mustParse(t, `<log>
	  <entry><at>2026-06-11T10:00:00Z</at></entry>
	  <entry><at>2026-06-11T12:00:00Z</at></entry>
	  <entry><at>2026-06-12T09:00:00Z</at></entry>
	</log>`)
	from := time.Date(2026, 6, 11, 0, 0, 0, 0, time.UTC)
	to := time.Date(2026, 6, 11, 23, 59, 59, 0, time.UTC)
	hits := d.RangeDateTime(from, to)
	ats := 0
	for _, r := range hits {
		if r.Name() == "at" {
			ats++
		}
	}
	if ats != 2 {
		t.Errorf("found %d <at> in range, want 2", ats)
	}
	at := d.Find("at")
	v, ok := d.DateTimeValue(at)
	if !ok || !v.Equal(time.Date(2026, 6, 11, 10, 0, 0, 0, time.UTC)) {
		t.Errorf("DateTimeValue = %v %v", v, ok)
	}
}

func TestDateRange(t *testing.T) {
	d := mustParse(t, `<people>
	  <person><name>a</name><birthday>1966-09-26</birthday></person>
	  <person><name>b</name><birthday>1971-01-05</birthday></person>
	  <person><name>c</name><birthday>1985-12-31</birthday></person>
	</people>`)
	from := time.Date(1960, 1, 1, 0, 0, 0, 0, time.UTC)
	to := time.Date(1975, 1, 1, 0, 0, 0, 0, time.UTC)
	birthdays := 0
	for _, r := range d.RangeDate(from, to) {
		if r.Name() == "birthday" {
			birthdays++
		}
	}
	if birthdays != 2 {
		t.Errorf("found %d <birthday> in range, want 2", birthdays)
	}
	b := d.Find("birthday")
	v, ok := d.DateValue(b)
	if !ok || !v.Equal(time.Date(1966, 9, 26, 0, 0, 0, 0, time.UTC)) {
		t.Errorf("DateValue = %v %v", v, ok)
	}
	// The date index answers xs:date XPath predicates.
	hits, err := d.Query(`//person[birthday < xs:date("1970-01-01")]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || d.StringValue(hits[0].Node) != "a1966-09-26" {
		t.Errorf("xs:date query hits = %v", hits)
	}
}

func TestSaveLoad(t *testing.T) {
	d := mustParse(t, personXML)
	path := filepath.Join(t.TempDir(), "person.xvi")
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
	d2, err := xmlvi.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Verify(); err != nil {
		t.Fatal(err)
	}
	if len(d2.LookupString("Arthur")) != len(d.LookupString("Arthur")) {
		t.Error("lookup differs after reload")
	}
}

func TestXMLRoundTrip(t *testing.T) {
	d := mustParse(t, personXML)
	out, err := d.XML()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := xmlvi.Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	if d2.StringValue(d2.Root()) != d.StringValue(d.Root()) {
		t.Error("round trip changed content")
	}
	var sb strings.Builder
	if err := d.WriteXML(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != string(out) {
		t.Error("WriteXML differs from XML")
	}
}

func TestTransactions(t *testing.T) {
	d := mustParse(t, personXML)
	tx := d.Begin()
	first := d.Children(d.Find("first"))[0]
	if err := tx.SetText(first, "Ford"); err != nil {
		t.Fatal(err)
	}
	// Conflicting writer sees ErrConflict.
	tx2 := d.Begin()
	if err := tx2.SetText(first, "Zaphod"); err != xmlvi.ErrConflict {
		t.Errorf("conflict = %v", err)
	}
	tx2.Abort()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(d.LookupString("FordDent")) == 0 {
		t.Error("txn update not visible")
	}
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsSelectIndexes(t *testing.T) {
	d, err := xmlvi.ParseWithOptions([]byte(personXML), xmlvi.Options{String: true})
	if err != nil {
		t.Fatal(err)
	}
	if hits := d.RangeDouble(0, 1000); len(hits) != 0 {
		t.Error("double index should be absent")
	}
	if len(d.LookupString("Arthur")) == 0 {
		t.Error("string index should be present")
	}
}

func TestParseErrorsSurface(t *testing.T) {
	if _, err := xmlvi.ParseString(`<a>`); err == nil {
		t.Error("bad XML must fail")
	}
	d := mustParse(t, personXML)
	if _, err := d.Query(`//[bad`); err == nil {
		t.Error("bad query must fail")
	}
}

func TestStats(t *testing.T) {
	d := mustParse(t, personXML)
	s := d.Stats()
	if s.Texts != 8 || s.Elements != 11 {
		t.Errorf("stats = %+v", s)
	}
	if s.DoubleNonLeaf != 2 {
		t.Errorf("non-leaf doubles = %d", s.DoubleNonLeaf)
	}
}
