package xmlvi_test

// Property test for point-in-time opens: across a mixed commit history
// (text batches, attribute updates, insertions, deletions, and a
// mid-history checkpoint), OpenAt(N) must be byte-identical to the
// document as it stood when version N was published — and versions
// outside the durable window must fail with the typed errors.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	xmlvi "repro"
)

const openAtXML = `<site>
  <items>
    <item id="i1"><name>alpha</name><quantity>3</quantity></item>
    <item id="i2"><name>beta</name><quantity>7</quantity></item>
    <item id="i3"><name>gamma</name><quantity>5</quantity></item>
  </items>
</site>`

// snapshotBytes serialises the pinned version's plain snapshot encoding.
func snapshotBytes(t *testing.T, dir string, p *xmlvi.Pinned, tag string) []byte {
	t.Helper()
	path := filepath.Join(dir, tag+".xvi")
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	os.Remove(path)
	return b
}

func TestOpenAtMatchesHistory(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "doc.xvi")
	wal := filepath.Join(dir, "doc.wal")
	doc, err := xmlvi.ParseWithOptions([]byte(openAtXML), xmlvi.Options{StripWhitespace: true, WAL: wal})
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Save(snap); err != nil {
		t.Fatal(err)
	}

	// Build the oracle: after every commit, record the exact bytes the
	// just-published version serialises to. A mid-history checkpoint
	// compacts the log, shrinking the durable window's left edge.
	const commits = 30
	const checkpointAfter = 12
	oracle := map[uint64][]byte{doc.Version(): snapshotBytes(t, dir, doc.Pin(), "v1")}
	for i := 0; i < commits; i++ {
		switch i % 5 {
		case 0, 3:
			var ups []xmlvi.TextUpdate
			for j, q := range doc.FindAll("quantity") {
				if j == 2 {
					break
				}
				ups = append(ups, xmlvi.TextUpdate{Node: doc.Children(q)[0], Value: fmt.Sprintf("%d", 20+i+j)})
			}
			if err := doc.UpdateTexts(ups); err != nil {
				t.Fatalf("commit %d: texts: %v", i, err)
			}
		case 1:
			it := doc.Find("item")
			if err := doc.UpdateAttr(doc.FindAttr(it, "id"), fmt.Sprintf("id-%d", i)); err != nil {
				t.Fatalf("commit %d: attr: %v", i, err)
			}
		case 2:
			frag := fmt.Sprintf(`<item id="x%d"><name>extra%d</name><quantity>9</quantity></item>`, i, i)
			if _, err := doc.InsertXML(doc.Find("items"), 0, frag); err != nil {
				t.Fatalf("commit %d: insert: %v", i, err)
			}
		case 4:
			if err := doc.Delete(doc.Find("item")); err != nil {
				t.Fatalf("commit %d: delete: %v", i, err)
			}
		}
		v := doc.Version()
		oracle[v] = snapshotBytes(t, dir, doc.Pin(), fmt.Sprintf("v%d", v))
		if i == checkpointAfter {
			if err := doc.Checkpoint(); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
		}
	}
	last := doc.Version()
	windowStart := uint64(2 + checkpointAfter) // the version the checkpoint compacted to
	if err := doc.Close(); err != nil {
		t.Fatal(err)
	}

	// Random versions across (and beyond) the history, deterministic seed.
	rng := rand.New(rand.NewSource(7))
	probes := map[uint64]bool{windowStart: true, last: true, 1: true, last + 3: true}
	for len(probes) < 16 {
		probes[1+uint64(rng.Intn(int(last)+4))] = true
	}
	for v := range probes {
		hist, err := xmlvi.OpenAt(snap, wal, v)
		switch {
		case v < windowStart:
			if !errors.Is(err, xmlvi.ErrVersionBeforeSnapshot) {
				t.Errorf("OpenAt(%d) before the window: err = %v, want ErrVersionBeforeSnapshot", v, err)
			}
			continue
		case v > last:
			if !errors.Is(err, xmlvi.ErrVersionInFuture) {
				t.Errorf("OpenAt(%d) after the window: err = %v, want ErrVersionInFuture", v, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("OpenAt(%d): %v", v, err)
		}
		if got := hist.Version(); got != v {
			t.Fatalf("OpenAt(%d) opened version %d", v, got)
		}
		b := snapshotBytes(t, dir, hist.Pin(), fmt.Sprintf("at%d", v))
		if !bytes.Equal(b, oracle[v]) {
			t.Errorf("OpenAt(%d): %d bytes differ from the %d-byte oracle snapshot", v, len(b), len(oracle[v]))
		}
	}
}

// TestOpenAtIsDetached pins down that a point-in-time open is a replica:
// mutating it must not touch the durable pair it was opened from.
func TestOpenAtIsDetached(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "doc.xvi")
	wal := filepath.Join(dir, "doc.wal")
	doc, err := xmlvi.ParseWithOptions([]byte(openAtXML), xmlvi.Options{StripWhitespace: true, WAL: wal})
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Save(snap); err != nil {
		t.Fatal(err)
	}
	if err := doc.UpdateAttr(doc.FindAttr(doc.Find("item"), "id"), "changed"); err != nil {
		t.Fatal(err)
	}
	if err := doc.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}

	hist, err := xmlvi.OpenAt(snap, wal, 2)
	if err != nil {
		t.Fatal(err)
	}
	if hist.Durable() {
		t.Fatal("point-in-time open has a log attached")
	}
	if err := hist.Delete(hist.Find("item")); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("mutating a point-in-time open wrote to the source WAL")
	}
}
