package xmlvi_test

// Regression tests for Document.Close under concurrency: Close is
// idempotent and safe while pinned readers are in flight — the server's
// shutdown path drains queries and detaches the WAL concurrently.

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	xmlvi "repro"
)

// TestCloseIdempotent closes repeatedly, with and without a WAL.
func TestCloseIdempotent(t *testing.T) {
	plain, err := xmlvi.ParseString(`<r><v>1</v></r>`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := plain.Close(); err != nil {
			t.Fatalf("close #%d of WAL-less document: %v", i+1, err)
		}
	}

	dir := t.TempDir()
	durable, err := xmlvi.ParseWithOptions([]byte(`<r><v>1</v></r>`),
		xmlvi.Options{WAL: filepath.Join(dir, "d.wal")})
	if err != nil {
		t.Fatal(err)
	}
	if err := durable.Save(filepath.Join(dir, "d.xvi")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := durable.Close(); err != nil {
			t.Fatalf("close #%d of durable document: %v", i+1, err)
		}
	}
}

// TestCloseDuringQueries closes a durable document while pinned readers
// keep querying: reads must neither fail nor observe torn state, and
// every concurrent Close must succeed. Runs under -race in CI.
func TestCloseDuringQueries(t *testing.T) {
	dir := t.TempDir()
	doc, err := xmlvi.ParseWithOptions(
		[]byte(`<site><item><quantity>3</quantity></item><item><quantity>7</quantity></item></site>`),
		xmlvi.Options{WAL: filepath.Join(dir, "site.wal"), StripWhitespace: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Save(filepath.Join(dir, "site.xvi")); err != nil {
		t.Fatal(err)
	}
	// A few logged commits so Close has a real WAL to sync and detach.
	leaf := doc.Find("quantity")
	for i := 0; i < 5; i++ {
		if err := doc.UpdateText(doc.Children(leaf)[0], fmt.Sprint(100+i)); err != nil {
			t.Fatal(err)
		}
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				p := doc.Pin()
				hits, err := p.Query(`//quantity[. = 104]`)
				if err != nil {
					t.Errorf("pinned query during close: %v", err)
					return
				}
				if len(hits) != 1 {
					t.Errorf("pinned query during close: %d hits, want 1", len(hits))
					return
				}
			}
		}()
	}
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := doc.Close(); err != nil {
				t.Errorf("concurrent close: %v", err)
			}
		}()
	}
	close(start)
	wg.Wait()

	// The document stays usable in memory after Close; updates are
	// simply no longer logged.
	if err := doc.UpdateText(doc.Children(leaf)[0], "999"); err != nil {
		t.Fatalf("update after close: %v", err)
	}
	if hits, err := doc.Query(`//quantity[. = 999]`); err != nil || len(hits) != 1 {
		t.Fatalf("query after close: %d hits, err %v", len(hits), err)
	}
}
