package xmlvi_test

// End-to-end integration: generate each evaluation corpus, shred, index,
// persist, reload, query, update, and verify — the full life cycle every
// module participates in.

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	xmlvi "repro"
	"repro/internal/datagen"
)

func TestEndToEndAllDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("integration is slow in -short mode")
	}
	for _, name := range datagen.Names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			xml, err := datagen.Generate(name, 0.02, 11)
			if err != nil {
				t.Fatal(err)
			}
			doc, err := xmlvi.Parse(xml)
			if err != nil {
				t.Fatal(err)
			}
			if err := doc.Verify(); err != nil {
				t.Fatalf("fresh build: %v", err)
			}

			// Persist and reload; reloaded index answers identically.
			path := filepath.Join(t.TempDir(), name+".xvi")
			if err := doc.Save(path); err != nil {
				t.Fatal(err)
			}
			doc2, err := xmlvi.Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := doc2.Verify(); err != nil {
				t.Fatalf("reloaded: %v", err)
			}
			probe := probeQuery(name)
			a, err := doc.Query(probe)
			if err != nil {
				t.Fatal(err)
			}
			b, err := doc2.Query(probe)
			if err != nil {
				t.Fatal(err)
			}
			if len(a) != len(b) {
				t.Fatalf("query %q differs after reload: %d vs %d", probe, len(a), len(b))
			}
			scan, err := doc2.QueryScan(probe)
			if err != nil {
				t.Fatal(err)
			}
			if len(scan) != len(b) {
				t.Fatalf("query %q: indexed %d vs scan %d", probe, len(b), len(scan))
			}

			// Random text updates on the reloaded document keep it
			// consistent.
			rng := rand.New(rand.NewSource(13))
			var updates []xmlvi.TextUpdate
			texts := textNodesOf(doc2)
			for i := 0; i < 30 && len(texts) > 0; i++ {
				updates = append(updates, xmlvi.TextUpdate{
					Node:  texts[rng.Intn(len(texts))],
					Value: fmt.Sprintf("%d.%02d", rng.Intn(1000), rng.Intn(100)),
				})
			}
			if err := doc2.UpdateTexts(updates); err != nil {
				t.Fatal(err)
			}
			if err := doc2.Verify(); err != nil {
				t.Fatalf("after updates: %v", err)
			}

			// Structural churn: delete one subtree, insert a fragment.
			victims := doc2.FindAll(victimTag(name))
			if len(victims) > 1 {
				if err := doc2.Delete(victims[len(victims)/2]); err != nil {
					t.Fatal(err)
				}
			}
			root := doc2.Children(doc2.Root())[0]
			if _, err := doc2.InsertXML(root, 0, `<injected><v>42.42</v></injected>`); err != nil {
				t.Fatal(err)
			}
			if err := doc2.Verify(); err != nil {
				t.Fatalf("after structural churn: %v", err)
			}
			if hits := doc2.LookupDouble(42.42); len(hits) == 0 {
				t.Error("inserted value not queryable")
			}
		})
	}
}

func probeQuery(dataset string) string {
	switch dataset {
	case "epageo":
		return `//facility[.//accuracy_value < 50]`
	case "dblp":
		return `//article[year >= 2000]`
	case "psd":
		return `//ProteinEntry[reference/year = 1999]`
	case "wiki":
		return `//doc[title != ""]`
	default:
		return `//item[quantity >= 9]`
	}
}

func victimTag(dataset string) string {
	switch dataset {
	case "epageo":
		return "facility"
	case "dblp":
		return "article"
	case "psd":
		return "ProteinEntry"
	case "wiki":
		return "doc"
	default:
		return "item"
	}
}

func textNodesOf(d *xmlvi.Document) []xmlvi.Node {
	var out []xmlvi.Node
	var walk func(n xmlvi.Node)
	walk = func(n xmlvi.Node) {
		for _, c := range d.Children(n) {
			if d.Name(c) == "" && d.StringValue(c) != "" && len(d.Children(c)) == 0 {
				out = append(out, c)
			} else {
				walk(c)
			}
		}
	}
	walk(d.Root())
	return out
}
