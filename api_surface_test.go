package xmlvi_test

import (
	"testing"

	xmlvi "repro"
)

// TestAPISurface exercises the facade methods end to end on one document
// so every public entry point is covered by at least one assertion.
func TestAPISurface(t *testing.T) {
	d := mustParse(t, `<shop>
	  <item sku="A1"><name>lamp</name><price>25.00</price></item>
	  <item sku="B2"><name>desk</name><price>125.00</price></item>
	</shop>`)

	if got := d.NumNodes(); got < 10 {
		t.Errorf("NumNodes = %d", got)
	}
	items := d.FindAll("item")
	if len(items) != 2 {
		t.Fatalf("FindAll(item) = %d", len(items))
	}
	if d.Parent(items[0]) != d.Find("shop") {
		t.Error("Parent broken")
	}
	if d.Name(items[0]) != "item" {
		t.Error("Name broken")
	}
	if d.Hash(items[0]) == 0 {
		t.Error("Hash of non-empty element should not be 0")
	}
	price := d.FindAll("price")[0]
	if v, ok := d.DoubleValue(price); !ok || v != 25 {
		t.Errorf("DoubleValue = %v %v", v, ok)
	}

	// QueryScan agrees with Query.
	q := `//item[price > 100]`
	a, err := d.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.QueryScan(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 1 || len(b) != 1 || a[0].Node != b[0].Node {
		t.Errorf("Query %v vs QueryScan %v", a, b)
	}

	// Exclusive range excludes endpoints.
	if hits := d.RangeDoubleExclusive(25, 125); len(hits) != 0 {
		t.Errorf("exclusive (25,125) = %v", hits)
	}
	if hits := d.RangeDouble(25, 125); len(hits) == 0 {
		t.Error("inclusive [25,125] empty")
	}

	// Batch updates through the facade.
	texts := []xmlvi.TextUpdate{
		{Node: d.Children(d.FindAll("price")[0])[0], Value: "30"},
		{Node: d.Children(d.FindAll("price")[1])[0], Value: "130"},
	}
	if err := d.UpdateTexts(texts); err != nil {
		t.Fatal(err)
	}
	if hits := d.LookupDouble(30); len(hits) == 0 {
		t.Error("batch update not indexed")
	}

	// Attribute update.
	sku := d.FindAttr(items[0], "sku")
	if sku < 0 {
		t.Fatal("FindAttr failed")
	}
	if err := d.UpdateAttr(sku, "Z9"); err != nil {
		t.Fatal(err)
	}
	if hits := d.LookupString("Z9"); len(hits) != 1 || !hits[0].IsAttr {
		t.Errorf("attr update lookup = %v", hits)
	}
	if hits := d.LookupString("A1"); len(hits) != 0 {
		t.Error("old attr value still indexed")
	}
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}

	// Text-node result values.
	tx, _ := d.Query(`//name/text()`)
	if len(tx) != 2 || tx[0].Value() != "lamp" || tx[0].Name() != "" {
		t.Errorf("text results = %v", tx)
	}
}

// TestErrNotTextSurface checks the exported error value round-trips.
func TestErrNotTextSurface(t *testing.T) {
	d := mustParse(t, `<a><b>x</b></a>`)
	err := d.UpdateText(d.Find("b"), "nope")
	if err == nil {
		t.Fatal("UpdateText on element must fail")
	}
}
