package xmlvi_test

import (
	"errors"
	"strings"
	"testing"

	xmlvi "repro"
)

const plannerDoc = `<site>
  <person id="p1"><income>99000</income><birthday>1955-04-02</birthday></person>
  <person id="p2"><income>12000</income><birthday>1980-09-17</birthday></person>
  <person id="p3"><income>98000</income><birthday>1992-01-30</birthday></person>
  <person id="p4"><income>97000</income><birthday>1958-12-01</birthday></person>
</site>`

// TestQueryUnsupportedPathTyped is the regression test for the silent
// nil: mid-path attribute steps must fail with ErrUnsupportedPath from
// Query, QueryScan, and Explain — not return an empty result set.
func TestQueryUnsupportedPathTyped(t *testing.T) {
	doc, err := xmlvi.ParseString(plannerDoc)
	if err != nil {
		t.Fatal(err)
	}
	for _, expr := range []string{`//@id/income`, `/site/@id/person[income = 1]`} {
		if _, err := doc.Query(expr); !errors.Is(err, xmlvi.ErrUnsupportedPath) {
			t.Errorf("Query(%q) err = %v, want ErrUnsupportedPath", expr, err)
		}
		if _, err := doc.QueryScan(expr); !errors.Is(err, xmlvi.ErrUnsupportedPath) {
			t.Errorf("QueryScan(%q) err = %v, want ErrUnsupportedPath", expr, err)
		}
		if _, _, err := doc.Explain(expr); !errors.Is(err, xmlvi.ErrUnsupportedPath) {
			t.Errorf("Explain(%q) err = %v, want ErrUnsupportedPath", expr, err)
		}
	}
	// Supported shapes still answer.
	res, err := doc.Query(`//person[income > 95000]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
}

// TestExplainAPI pins the public EXPLAIN surface: a conjunctive query
// produces a printable plan with estimates and actuals, results match
// Query, and the planner knob switches strategies.
func TestExplainAPI(t *testing.T) {
	doc, err := xmlvi.ParseString(plannerDoc)
	if err != nil {
		t.Fatal(err)
	}
	expr := `//person[income > 95000 and birthday < xs:date("1960-01-01")]`
	res, plan, err := doc.Explain(expr)
	if err != nil {
		t.Fatal(err)
	}
	want, err := doc.Query(expr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(want) || len(res) != 2 {
		t.Fatalf("Explain returned %d results, Query %d, want 2", len(res), len(want))
	}
	s := plan.String()
	if !strings.Contains(s, "est ") || !strings.Contains(s, "actual ") {
		t.Errorf("plan missing cardinalities:\n%s", s)
	}
	if plan.Root.ActRows != 2 {
		t.Errorf("root actual = %d, want 2", plan.Root.ActRows)
	}

	// The knob: forced scan answers identically, and reports a scan op.
	doc.SetPlanner(xmlvi.PlannerForceScan)
	if doc.Planner() != xmlvi.PlannerForceScan {
		t.Fatal("SetPlanner did not stick")
	}
	res2, plan2, err := doc.Explain(expr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2) != 2 {
		t.Fatalf("forced scan: %d results, want 2", len(res2))
	}
	if plan2.UsesIndex() {
		t.Errorf("forced scan used an index:\n%s", plan2)
	}
	for _, mode := range []xmlvi.PlannerMode{xmlvi.PlannerLegacy, xmlvi.PlannerForceIndex, xmlvi.PlannerAuto} {
		doc.SetPlanner(mode)
		r, err := doc.Query(expr)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if len(r) != 2 {
			t.Fatalf("mode %v: %d results, want 2", mode, len(r))
		}
	}
}

// TestPlannerOptionThreadsThrough pins Options.Planner.
func TestPlannerOptionThreadsThrough(t *testing.T) {
	doc, err := xmlvi.ParseWithOptions([]byte(plannerDoc), xmlvi.Options{Planner: xmlvi.PlannerLegacy})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Planner() != xmlvi.PlannerLegacy {
		t.Fatalf("planner = %v, want legacy", doc.Planner())
	}
	if _, err := xmlvi.ParsePlannerMode("nope"); err == nil {
		t.Fatal("ParsePlannerMode accepted garbage")
	}
	m, err := xmlvi.ParsePlannerMode("index")
	if err != nil || m != xmlvi.PlannerForceIndex {
		t.Fatalf("ParsePlannerMode(index) = %v, %v", m, err)
	}
}
